// Package kernels provides the benchmark DDG suite used by the experiments:
// hand-built data dependence graphs of the loop bodies the paper evaluates
// on (Livermore loops, Linpack, Whetstone, SpecFP-like kernels), plus the
// paper's Figure 2 example and synthetic stress shapes.
//
// The paper extracted these DAGs with a compiler front end; we rebuild them
// from the published kernel sources with a classic latency model (loads 4,
// fadd 3, fmul 4, fdiv 17 — the 17 matches the paper's Figure 2 long-latency
// operation). Loop-invariant operands and live-in arrays are register-
// allocated outside the body and therefore are not value nodes, exactly as
// in a loop-body DAG; where a kernel keeps an invariant in a register we
// model its (re)materialization explicitly so that multi-consumer values
// with non-trivial potential-killer sets appear, which is what makes RS
// analysis interesting.
package kernels

import (
	"fmt"
	"sort"

	"regsat/internal/ddg"
)

// Latencies of the generic machine model.
const (
	LatLoad  = 4
	LatStore = 1
	LatFAdd  = 3
	LatFMul  = 4
	LatFDiv  = 17
	LatIAdd  = 1
	LatIMul  = 3
	LatCopy  = 1
)

func opLatency(op string) int64 {
	switch op {
	case "load":
		return LatLoad
	case "store":
		return LatStore
	case "fadd", "fsub":
		return LatFAdd
	case "fmul":
		return LatFMul
	case "fdiv":
		return LatFDiv
	case "iadd", "isub", "ldc":
		return LatIAdd
	case "imul":
		return LatIMul
	case "copy", "fldc":
		return LatCopy
	default:
		return 1
	}
}

// Spec describes one benchmark kernel.
type Spec struct {
	Name        string
	Suite       string // "linpack", "livermore", "whetstone", "specfp", "synthetic", "paper"
	Description string
	Build       func(machine ddg.MachineKind) *ddg.Graph
}

// builder wraps ddg.Graph construction with the latency table and machine-
// dependent offsets: on VLIW the result register is written δw = latency
// cycles after issue; superscalar and EPIC write offsets are zero.
type builder struct {
	g *ddg.Graph
	m ddg.MachineKind
}

func newBuilder(name string, m ddg.MachineKind) *builder {
	return &builder{g: ddg.New(name, m), m: m}
}

// typeOf returns the single register type written by node id.
func (b *builder) typeOf(id int) ddg.RegType {
	for t := range b.g.Node(id).Writes {
		return t
	}
	panic(fmt.Sprintf("kernels: node %s writes no value", b.g.Node(id).Name))
}

// val adds an operation producing a value of type t, with flow edges from
// each producer in deps.
func (b *builder) val(name, op string, t ddg.RegType, deps ...int) int {
	lat := opLatency(op)
	id := b.g.AddNode(name, op, lat)
	var dw int64
	if b.m == ddg.VLIW {
		dw = lat
	}
	b.g.SetWrites(id, t, dw)
	for _, d := range deps {
		b.g.AddFlowEdge(d, id, b.typeOf(d))
	}
	return id
}

// op adds a non-value operation (e.g. a store) consuming deps.
func (b *builder) op(name, op string, deps ...int) int {
	id := b.g.AddNode(name, op, opLatency(op))
	for _, d := range deps {
		b.g.AddFlowEdge(d, id, b.typeOf(d))
	}
	return id
}

func (b *builder) finish() *ddg.Graph {
	if err := b.g.Finalize(); err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", b.g.Name, err))
	}
	return b.g
}

// ---------------------------------------------------------------------------
// Paper example

// Figure2 is a behavioural reconstruction of the paper's Figure 2 DAG: four
// values a (latency 17), b, c, d (latency 1) with independent consumers, so
// that some schedule keeps all four simultaneously alive (RS = 4) while
// serialization arcs can reduce the saturation. See EXPERIMENTS.md for the
// reconstruction argument.
func Figure2(m ddg.MachineKind) *ddg.Graph {
	b := newBuilder("fig2", m)
	a := b.val("a", "fdiv", ddg.Float) // latency 17
	v1 := b.val("b", "copy", ddg.Float)
	v2 := b.val("c", "copy", ddg.Float)
	v3 := b.val("d", "copy", ddg.Float)
	b.op("sa", "store", a)
	b.op("sb", "store", v1)
	b.op("sc", "store", v2)
	b.op("sd", "store", v3)
	return b.finish()
}

// ---------------------------------------------------------------------------
// Linpack

func daxpy(m ddg.MachineKind) *ddg.Graph {
	// y[i] = y[i] + a*x[i], with pointer increments kept in int registers.
	b := newBuilder("lin-daxpy", m)
	ax := b.val("ax", "iadd", ddg.Int) // address of x[i]
	ay := b.val("ay", "iadd", ddg.Int) // address of y[i]
	lx := b.val("lx", "load", ddg.Float, ax)
	ly := b.val("ly", "load", ddg.Float, ay)
	mul := b.val("mul", "fmul", ddg.Float, lx)
	sum := b.val("sum", "fadd", ddg.Float, ly, mul)
	b.op("st", "store", sum, ay)
	b.val("axn", "iadd", ddg.Int, ax) // next x address (exit value)
	b.val("ayn", "iadd", ddg.Int, ay) // next y address (exit value)
	return b.finish()
}

func ddot(m ddg.MachineKind) *ddg.Graph {
	// s += x[i]*y[i] unrolled twice with a reduction tree.
	b := newBuilder("lin-ddot", m)
	ax := b.val("ax", "iadd", ddg.Int)
	ay := b.val("ay", "iadd", ddg.Int)
	lx1 := b.val("lx1", "load", ddg.Float, ax)
	ly1 := b.val("ly1", "load", ddg.Float, ay)
	lx2 := b.val("lx2", "load", ddg.Float, ax)
	ly2 := b.val("ly2", "load", ddg.Float, ay)
	m1 := b.val("m1", "fmul", ddg.Float, lx1, ly1)
	m2 := b.val("m2", "fmul", ddg.Float, lx2, ly2)
	p := b.val("p", "fadd", ddg.Float, m1, m2)
	b.val("acc", "fadd", ddg.Float, p) // s += p (s is live-in, result exits)
	b.val("axn", "iadd", ddg.Int, ax)
	b.val("ayn", "iadd", ddg.Int, ay)
	return b.finish()
}

func dscal(m ddg.MachineKind) *ddg.Graph {
	// x[i] = a*x[i] unrolled twice.
	b := newBuilder("lin-dscal", m)
	ax := b.val("ax", "iadd", ddg.Int)
	l1 := b.val("l1", "load", ddg.Float, ax)
	l2 := b.val("l2", "load", ddg.Float, ax)
	m1 := b.val("m1", "fmul", ddg.Float, l1)
	m2 := b.val("m2", "fmul", ddg.Float, l2)
	b.op("st1", "store", m1, ax)
	b.op("st2", "store", m2, ax)
	b.val("axn", "iadd", ddg.Int, ax)
	return b.finish()
}

// ---------------------------------------------------------------------------
// Livermore loops

func livL1(m ddg.MachineKind) *ddg.Graph {
	// Hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
	b := newBuilder("liv-l1", m)
	az := b.val("az", "iadd", ddg.Int)
	lz10 := b.val("lz10", "load", ddg.Float, az)
	lz11 := b.val("lz11", "load", ddg.Float, az)
	ly := b.val("ly", "load", ddg.Float)
	m1 := b.val("m1", "fmul", ddg.Float, lz10) // r*z[k+10]
	m2 := b.val("m2", "fmul", ddg.Float, lz11) // t*z[k+11]
	a1 := b.val("a1", "fadd", ddg.Float, m1, m2)
	m3 := b.val("m3", "fmul", ddg.Float, ly, a1)
	a2 := b.val("a2", "fadd", ddg.Float, m3) // q + …
	b.op("st", "store", a2)
	b.val("azn", "iadd", ddg.Int, az)
	return b.finish()
}

func livL2(m ddg.MachineKind) *ddg.Graph {
	// ICCG excerpt: x[i] = x[i] − v[i]*x[i−1] − w[i]*x[i+1].
	b := newBuilder("liv-l2", m)
	lx := b.val("lx", "load", ddg.Float)
	lxm := b.val("lxm", "load", ddg.Float)
	lxp := b.val("lxp", "load", ddg.Float)
	lv := b.val("lv", "load", ddg.Float)
	lw := b.val("lw", "load", ddg.Float)
	m1 := b.val("m1", "fmul", ddg.Float, lv, lxm)
	m2 := b.val("m2", "fmul", ddg.Float, lw, lxp)
	s1 := b.val("s1", "fsub", ddg.Float, lx, m1)
	s2 := b.val("s2", "fsub", ddg.Float, s1, m2)
	b.op("st", "store", s2)
	return b.finish()
}

func livL3(m ddg.MachineKind) *ddg.Graph {
	// Inner product: q += z[k]*x[k], unrolled twice.
	b := newBuilder("liv-l3", m)
	lz1 := b.val("lz1", "load", ddg.Float)
	lx1 := b.val("lx1", "load", ddg.Float)
	lz2 := b.val("lz2", "load", ddg.Float)
	lx2 := b.val("lx2", "load", ddg.Float)
	m1 := b.val("m1", "fmul", ddg.Float, lz1, lx1)
	m2 := b.val("m2", "fmul", ddg.Float, lz2, lx2)
	a1 := b.val("a1", "fadd", ddg.Float, m1, m2)
	b.val("q", "fadd", ddg.Float, a1)
	return b.finish()
}

func livL5(m ddg.MachineKind) *ddg.Graph {
	// Tri-diagonal elimination: x[i] = z[i]*(y[i] − x[i−1]).
	b := newBuilder("liv-l5", m)
	ly := b.val("ly", "load", ddg.Float)
	lz := b.val("lz", "load", ddg.Float)
	lxm := b.val("lxm", "load", ddg.Float)
	s := b.val("s", "fsub", ddg.Float, ly, lxm)
	p := b.val("p", "fmul", ddg.Float, lz, s)
	b.op("st", "store", p)
	return b.finish()
}

func livL7(m ddg.MachineKind) *ddg.Graph {
	// Equation of state fragment (large expression; the invariants r, t, q
	// are rematerialized into registers, giving multi-consumer values):
	// x[k] = u[k] + r*(z[k] + r*y[k])
	//             + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
	//                  + t*(u[k+6] + q*(u[k+5] + q*u[k+4]))).
	b := newBuilder("liv-l7", m)
	r := b.val("r", "fldc", ddg.Float)
	tt := b.val("t", "fldc", ddg.Float)
	q := b.val("q", "fldc", ddg.Float)
	lu := b.val("lu", "load", ddg.Float)
	lz := b.val("lz", "load", ddg.Float)
	ly := b.val("ly", "load", ddg.Float)
	lu1 := b.val("lu1", "load", ddg.Float)
	lu2 := b.val("lu2", "load", ddg.Float)
	lu3 := b.val("lu3", "load", ddg.Float)
	lu4 := b.val("lu4", "load", ddg.Float)
	lu5 := b.val("lu5", "load", ddg.Float)
	lu6 := b.val("lu6", "load", ddg.Float)
	m1 := b.val("m1", "fmul", ddg.Float, r, ly)   // r*y
	a1 := b.val("a1", "fadd", ddg.Float, lz, m1)  // z + r*y
	m2 := b.val("m2", "fmul", ddg.Float, r, lu1)  // r*u1
	a2 := b.val("a2", "fadd", ddg.Float, lu2, m2) // u2 + r*u1
	m3 := b.val("m3", "fmul", ddg.Float, r, a2)   // r*(…)
	a3 := b.val("a3", "fadd", ddg.Float, lu3, m3) // u3 + …
	m4 := b.val("m4", "fmul", ddg.Float, q, lu4)  // q*u4
	a4 := b.val("a4", "fadd", ddg.Float, lu5, m4) // u5 + q*u4
	m5 := b.val("m5", "fmul", ddg.Float, q, a4)   // q*(…)
	a5 := b.val("a5", "fadd", ddg.Float, lu6, m5) // u6 + …
	m6 := b.val("m6", "fmul", ddg.Float, tt, a5)  // t*e3
	a6 := b.val("a6", "fadd", ddg.Float, a3, m6)  // e2 + t*e3
	m7 := b.val("m7", "fmul", ddg.Float, tt, a6)  // t*(…)
	m8 := b.val("m8", "fmul", ddg.Float, r, a1)   // r*e1
	a7 := b.val("a7", "fadd", ddg.Float, lu, m8)  // u + r*e1
	a8 := b.val("a8", "fadd", ddg.Float, a7, m7)  // + t*(…)
	b.op("st", "store", a8)
	return b.finish()
}

func livL11(m ddg.MachineKind) *ddg.Graph {
	// First sum: x[k] = x[k−1] + y[k].
	b := newBuilder("liv-l11", m)
	lxm := b.val("lxm", "load", ddg.Float)
	ly := b.val("ly", "load", ddg.Float)
	s := b.val("s", "fadd", ddg.Float, lxm, ly)
	b.op("st", "store", s)
	b.val("ak", "iadd", ddg.Int)
	return b.finish()
}

func livL12(m ddg.MachineKind) *ddg.Graph {
	// First difference: x[k] = y[k+1] − y[k], unrolled twice sharing loads.
	b := newBuilder("liv-l12", m)
	ly0 := b.val("ly0", "load", ddg.Float)
	ly1 := b.val("ly1", "load", ddg.Float)
	ly2 := b.val("ly2", "load", ddg.Float)
	d1 := b.val("d1", "fsub", ddg.Float, ly1, ly0)
	d2 := b.val("d2", "fsub", ddg.Float, ly2, ly1)
	b.op("st1", "store", d1)
	b.op("st2", "store", d2)
	return b.finish()
}

func livL4(m ddg.MachineKind) *ddg.Graph {
	// Banded linear equations kernel: x[k] −= g[j]*x[j] three times, fused.
	b := newBuilder("liv-l4", m)
	lx := b.val("lx", "load", ddg.Float)
	g1 := b.val("g1", "load", ddg.Float)
	x1 := b.val("x1", "load", ddg.Float)
	g2 := b.val("g2", "load", ddg.Float)
	x2 := b.val("x2", "load", ddg.Float)
	g3 := b.val("g3", "load", ddg.Float)
	x3 := b.val("x3", "load", ddg.Float)
	m1 := b.val("m1", "fmul", ddg.Float, g1, x1)
	m2 := b.val("m2", "fmul", ddg.Float, g2, x2)
	m3 := b.val("m3", "fmul", ddg.Float, g3, x3)
	s1 := b.val("s1", "fsub", ddg.Float, lx, m1)
	s2 := b.val("s2", "fsub", ddg.Float, s1, m2)
	s3 := b.val("s3", "fsub", ddg.Float, s2, m3)
	b.op("st", "store", s3)
	return b.finish()
}

func livL9(m ddg.MachineKind) *ddg.Graph {
	// Integrate predictors: px[i] = sum of six weighted history terms.
	// The three invariant coefficients live in registers with multiple
	// consumers — a dense potential-killer structure.
	b := newBuilder("liv-l9", m)
	c1 := b.val("c1", "fldc", ddg.Float)
	c2 := b.val("c2", "fldc", ddg.Float)
	c3 := b.val("c3", "fldc", ddg.Float)
	var terms []int
	for i := 0; i < 6; i++ {
		l := b.val(fmt.Sprintf("h%d", i), "load", ddg.Float)
		coef := []int{c1, c2, c3}[i%3]
		terms = append(terms, b.val(fmt.Sprintf("w%d", i), "fmul", ddg.Float, coef, l))
	}
	a1 := b.val("a1", "fadd", ddg.Float, terms[0], terms[1])
	a2 := b.val("a2", "fadd", ddg.Float, terms[2], terms[3])
	a3 := b.val("a3", "fadd", ddg.Float, terms[4], terms[5])
	a4 := b.val("a4", "fadd", ddg.Float, a1, a2)
	a5 := b.val("a5", "fadd", ddg.Float, a4, a3)
	b.op("st", "store", a5)
	return b.finish()
}

func livL10(m ddg.MachineKind) *ddg.Graph {
	// Difference predictors: a chain of successive differences, each also
	// stored back — long chain with many short stored lifetimes.
	b := newBuilder("liv-l10", m)
	ar := b.val("ar", "load", ddg.Float)
	prev := ar
	for i := 0; i < 5; i++ {
		br := b.val(fmt.Sprintf("br%d", i), "load", ddg.Float)
		d := b.val(fmt.Sprintf("d%d", i), "fsub", ddg.Float, prev, br)
		b.op(fmt.Sprintf("st%d", i), "store", d)
		prev = d
	}
	return b.finish()
}

func livL18(m ddg.MachineKind) *ddg.Graph {
	// 2-D explicit hydrodynamics fragment: velocity update from four
	// pressure/viscosity neighbours.
	b := newBuilder("liv-l18", m)
	s := b.val("s", "fldc", ddg.Float)
	zu := b.val("zu", "load", ddg.Float)
	za1 := b.val("za1", "load", ddg.Float)
	za2 := b.val("za2", "load", ddg.Float)
	zb1 := b.val("zb1", "load", ddg.Float)
	zb2 := b.val("zb2", "load", ddg.Float)
	zz1 := b.val("zz1", "load", ddg.Float)
	zz2 := b.val("zz2", "load", ddg.Float)
	d1 := b.val("d1", "fsub", ddg.Float, za1, za2)
	d2 := b.val("d2", "fsub", ddg.Float, zb1, zb2)
	d3 := b.val("d3", "fsub", ddg.Float, zz1, zz2)
	m1 := b.val("m1", "fmul", ddg.Float, d1, d2)
	a1 := b.val("a1", "fadd", ddg.Float, m1, d3)
	m2 := b.val("m2", "fmul", ddg.Float, s, a1)
	un := b.val("un", "fadd", ddg.Float, zu, m2)
	b.op("st", "store", un)
	return b.finish()
}

func daxpyU4(m ddg.MachineKind) *ddg.Graph {
	// daxpy unrolled 4×: the bandwidth-bound shape registers actually
	// pressure on — 8 parallel loads and 4 independent mul/add pairs.
	b := newBuilder("lin-daxpy-u4", m)
	ax := b.val("ax", "iadd", ddg.Int)
	ay := b.val("ay", "iadd", ddg.Int)
	for i := 0; i < 4; i++ {
		lx := b.val(fmt.Sprintf("lx%d", i), "load", ddg.Float, ax)
		ly := b.val(fmt.Sprintf("ly%d", i), "load", ddg.Float, ay)
		mul := b.val(fmt.Sprintf("m%d", i), "fmul", ddg.Float, lx)
		sum := b.val(fmt.Sprintf("s%d", i), "fadd", ddg.Float, ly, mul)
		b.op(fmt.Sprintf("st%d", i), "store", sum, ay)
	}
	b.val("axn", "iadd", ddg.Int, ax)
	b.val("ayn", "iadd", ddg.Int, ay)
	return b.finish()
}

// ---------------------------------------------------------------------------
// Whetstone

func whetP3(m ddg.MachineKind) *ddg.Graph {
	// Whetstone module 3 body (t fixed): e1[j] computations
	// e1 = (e1 + e2 + e3 − e4)*t ; e2 = (e1 + e2 − e3 + e4)*t ; …
	b := newBuilder("whet-p3", m)
	t := b.val("t", "fldc", ddg.Float)
	e1 := b.val("e1", "load", ddg.Float)
	e2 := b.val("e2", "load", ddg.Float)
	e3 := b.val("e3", "load", ddg.Float)
	e4 := b.val("e4", "load", ddg.Float)
	s1 := b.val("s1", "fadd", ddg.Float, e1, e2)
	s2 := b.val("s2", "fadd", ddg.Float, s1, e3)
	s3 := b.val("s3", "fsub", ddg.Float, s2, e4)
	n1 := b.val("n1", "fmul", ddg.Float, s3, t)
	s4 := b.val("s4", "fadd", ddg.Float, n1, e2)
	s5 := b.val("s5", "fsub", ddg.Float, s4, e3)
	s6 := b.val("s6", "fadd", ddg.Float, s5, e4)
	n2 := b.val("n2", "fmul", ddg.Float, s6, t)
	b.op("st1", "store", n1)
	b.op("st2", "store", n2)
	return b.finish()
}

func whetP8(m ddg.MachineKind) *ddg.Graph {
	// Procedure P8-like body with a division chain:
	// x = t*(x + y); y = t*(x + y); z = (x + y)/t2.
	b := newBuilder("whet-p8", m)
	t := b.val("t", "fldc", ddg.Float)
	t2 := b.val("t2", "fldc", ddg.Float)
	x := b.val("x", "load", ddg.Float)
	y := b.val("y", "load", ddg.Float)
	a1 := b.val("a1", "fadd", ddg.Float, x, y)
	x1 := b.val("x1", "fmul", ddg.Float, t, a1)
	a2 := b.val("a2", "fadd", ddg.Float, x1, y)
	y1 := b.val("y1", "fmul", ddg.Float, t, a2)
	a3 := b.val("a3", "fadd", ddg.Float, x1, y1)
	z := b.val("z", "fdiv", ddg.Float, a3, t2)
	b.op("st", "store", z)
	return b.finish()
}

func whetP4(m ddg.MachineKind) *ddg.Graph {
	// Integer arithmetic module: j = j*(k−j)*(l−k); k = l*k − (l−j)*k; …
	// exercises the int register type with shared subexpressions.
	b := newBuilder("whet-p4", m)
	j := b.val("j", "load", ddg.Int)
	k := b.val("k", "load", ddg.Int)
	l := b.val("l", "load", ddg.Int)
	d1 := b.val("d1", "isub", ddg.Int, k, j)
	d2 := b.val("d2", "isub", ddg.Int, l, k)
	m1 := b.val("m1", "imul", ddg.Int, j, d1)
	j1 := b.val("j1", "imul", ddg.Int, m1, d2)
	m2 := b.val("m2", "imul", ddg.Int, l, k)
	d3 := b.val("d3", "isub", ddg.Int, l, j1)
	m3 := b.val("m3", "imul", ddg.Int, d3, k)
	k1 := b.val("k1", "isub", ddg.Int, m2, m3)
	b.op("st1", "store", j1)
	b.op("st2", "store", k1)
	return b.finish()
}

// ---------------------------------------------------------------------------
// SpecFP-like kernels

func swimStencil(m ddg.MachineKind) *ddg.Graph {
	// SWIM-like shallow-water stencil:
	// unew = uold + tdts8*(z(i,j+1)+z(i,j))*(cv(i,j+1)+cv(i,j))
	//             − tdtsdx*(h(i+1,j)−h(i,j)).
	b := newBuilder("spec-swim", m)
	t8 := b.val("t8", "fldc", ddg.Float)
	tdx := b.val("tdx", "fldc", ddg.Float)
	lz1 := b.val("lz1", "load", ddg.Float)
	lz2 := b.val("lz2", "load", ddg.Float)
	lcv1 := b.val("lcv1", "load", ddg.Float)
	lcv2 := b.val("lcv2", "load", ddg.Float)
	lh1 := b.val("lh1", "load", ddg.Float)
	lh2 := b.val("lh2", "load", ddg.Float)
	lu := b.val("lu", "load", ddg.Float)
	az := b.val("az", "fadd", ddg.Float, lz1, lz2)
	acv := b.val("acv", "fadd", ddg.Float, lcv1, lcv2)
	mzc := b.val("mzc", "fmul", ddg.Float, az, acv)
	m8 := b.val("m8", "fmul", ddg.Float, t8, mzc)
	dh := b.val("dh", "fsub", ddg.Float, lh1, lh2)
	mdx := b.val("mdx", "fmul", ddg.Float, tdx, dh)
	a1 := b.val("a1", "fadd", ddg.Float, lu, m8)
	un := b.val("un", "fsub", ddg.Float, a1, mdx)
	b.op("st", "store", un)
	return b.finish()
}

func tomcatvBody(m ddg.MachineKind) *ddg.Graph {
	// TOMCATV-like mesh residual: two coupled expressions sharing temps.
	b := newBuilder("spec-tomcatv", m)
	lx1 := b.val("lx1", "load", ddg.Float)
	lx2 := b.val("lx2", "load", ddg.Float)
	lx3 := b.val("lx3", "load", ddg.Float)
	ly1 := b.val("ly1", "load", ddg.Float)
	ly2 := b.val("ly2", "load", ddg.Float)
	ly3 := b.val("ly3", "load", ddg.Float)
	xx := b.val("xx", "fsub", ddg.Float, lx3, lx1) // x(i+1)−x(i−1)
	yx := b.val("yx", "fsub", ddg.Float, ly3, ly1)
	xy := b.val("xy", "fsub", ddg.Float, lx2, lx1)
	yy := b.val("yy", "fsub", ddg.Float, ly2, ly1)
	a := b.val("a", "fmul", ddg.Float, xx, xx)
	bb := b.val("bb", "fmul", ddg.Float, yx, yx)
	aa := b.val("aa", "fadd", ddg.Float, a, bb)
	c := b.val("c", "fmul", ddg.Float, xy, xy)
	d := b.val("d", "fmul", ddg.Float, yy, yy)
	cc := b.val("cc", "fadd", ddg.Float, c, d)
	pxy := b.val("pxy", "fmul", ddg.Float, xx, xy)
	qxy := b.val("qxy", "fmul", ddg.Float, yx, yy)
	bbb := b.val("bbb", "fadd", ddg.Float, pxy, qxy)
	b.op("st1", "store", aa)
	b.op("st2", "store", cc)
	b.op("st3", "store", bbb)
	return b.finish()
}

func fpppChain(m ddg.MachineKind) *ddg.Graph {
	// FPPPP-like long dependence chain with divisions and a shared scale.
	b := newBuilder("spec-fpppp", m)
	sc := b.val("sc", "fldc", ddg.Float)
	l1 := b.val("l1", "load", ddg.Float)
	l2 := b.val("l2", "load", ddg.Float)
	l3 := b.val("l3", "load", ddg.Float)
	d1 := b.val("d1", "fdiv", ddg.Float, l1, sc)
	m1 := b.val("m1", "fmul", ddg.Float, d1, l2)
	a1 := b.val("a1", "fadd", ddg.Float, m1, l3)
	d2 := b.val("d2", "fdiv", ddg.Float, a1, sc)
	m2 := b.val("m2", "fmul", ddg.Float, d2, d1)
	b.op("st", "store", m2)
	return b.finish()
}

func mgridResidual(m ddg.MachineKind) *ddg.Graph {
	// MGRID-like 3-D residual: r = v − a0*u(center) − a1*Σ(face neighbours).
	b := newBuilder("spec-mgrid", m)
	a0 := b.val("a0", "fldc", ddg.Float)
	a1 := b.val("a1", "fldc", ddg.Float)
	lv := b.val("lv", "load", ddg.Float)
	uc := b.val("uc", "load", ddg.Float)
	f1 := b.val("f1", "load", ddg.Float)
	f2 := b.val("f2", "load", ddg.Float)
	f3 := b.val("f3", "load", ddg.Float)
	f4 := b.val("f4", "load", ddg.Float)
	s1 := b.val("sum1", "fadd", ddg.Float, f1, f2)
	s2 := b.val("sum2", "fadd", ddg.Float, f3, f4)
	s3 := b.val("sum3", "fadd", ddg.Float, s1, s2)
	t0 := b.val("t0", "fmul", ddg.Float, a0, uc)
	t1 := b.val("t1", "fmul", ddg.Float, a1, s3)
	r1 := b.val("r1", "fsub", ddg.Float, lv, t0)
	r2 := b.val("r2", "fsub", ddg.Float, r1, t1)
	b.op("st", "store", r2)
	return b.finish()
}

func su2corComplexMAC(m ddg.MachineKind) *ddg.Graph {
	// SU2COR-like complex multiply-accumulate:
	// (cr,ci) += (ar,ai) * (br,bi).
	b := newBuilder("spec-su2cor", m)
	ar := b.val("ar", "load", ddg.Float)
	ai := b.val("ai", "load", ddg.Float)
	br := b.val("br", "load", ddg.Float)
	bi := b.val("bi", "load", ddg.Float)
	cr := b.val("cr", "load", ddg.Float)
	ci := b.val("ci", "load", ddg.Float)
	m1 := b.val("m1", "fmul", ddg.Float, ar, br)
	m2 := b.val("m2", "fmul", ddg.Float, ai, bi)
	m3 := b.val("m3", "fmul", ddg.Float, ar, bi)
	m4 := b.val("m4", "fmul", ddg.Float, ai, br)
	rr := b.val("rr", "fsub", ddg.Float, m1, m2)
	ri := b.val("ri", "fadd", ddg.Float, m3, m4)
	nr := b.val("nr", "fadd", ddg.Float, cr, rr)
	ni := b.val("ni", "fadd", ddg.Float, ci, ri)
	b.op("st1", "store", nr)
	b.op("st2", "store", ni)
	return b.finish()
}

// ---------------------------------------------------------------------------
// Synthetic stress shapes

func wideLoads(m ddg.MachineKind) *ddg.Graph {
	// Eight independent loads into one reduction tree: high saturation.
	b := newBuilder("syn-wide8", m)
	var loads []int
	for i := 0; i < 8; i++ {
		loads = append(loads, b.val(fmt.Sprintf("l%d", i), "load", ddg.Float))
	}
	lvl1 := make([]int, 0, 4)
	for i := 0; i < 8; i += 2 {
		lvl1 = append(lvl1, b.val(fmt.Sprintf("a%d", i/2), "fadd", ddg.Float, loads[i], loads[i+1]))
	}
	b1 := b.val("b0", "fadd", ddg.Float, lvl1[0], lvl1[1])
	b2 := b.val("b1", "fadd", ddg.Float, lvl1[2], lvl1[3])
	r := b.val("r", "fadd", ddg.Float, b1, b2)
	b.op("st", "store", r)
	return b.finish()
}

func chain(m ddg.MachineKind) *ddg.Graph {
	// Pure dependence chain: saturation is minimal (≤ 2).
	b := newBuilder("syn-chain6", m)
	prev := b.val("c0", "load", ddg.Float)
	for i := 1; i < 6; i++ {
		prev = b.val(fmt.Sprintf("c%d", i), "fadd", ddg.Float, prev)
	}
	b.op("st", "store", prev)
	return b.finish()
}

func forkJoin(m ddg.MachineKind) *ddg.Graph {
	// One producer fans out to four consumers that rejoin: the producer's
	// value has four potential killers.
	b := newBuilder("syn-fork4", m)
	src := b.val("src", "load", ddg.Float)
	var mids []int
	for i := 0; i < 4; i++ {
		mids = append(mids, b.val(fmt.Sprintf("f%d", i), "fmul", ddg.Float, src))
	}
	j1 := b.val("j1", "fadd", ddg.Float, mids[0], mids[1])
	j2 := b.val("j2", "fadd", ddg.Float, mids[2], mids[3])
	r := b.val("r", "fadd", ddg.Float, j1, j2)
	b.op("st", "store", r)
	return b.finish()
}

func diamondLadder(m ddg.MachineKind) *ddg.Graph {
	// Stacked diamonds: interleavable lifetimes at every level.
	b := newBuilder("syn-diamond", m)
	top := b.val("t0", "load", ddg.Float)
	for i := 0; i < 3; i++ {
		l := b.val(fmt.Sprintf("l%d", i), "fmul", ddg.Float, top)
		r := b.val(fmt.Sprintf("r%d", i), "fadd", ddg.Float, top)
		top = b.val(fmt.Sprintf("t%d", i+1), "fadd", ddg.Float, l, r)
	}
	b.op("st", "store", top)
	return b.finish()
}

func mixedTypes(m ddg.MachineKind) *ddg.Graph {
	// Address arithmetic (int) interleaved with float compute: exercises
	// multi-type RS analysis.
	b := newBuilder("syn-mixed", m)
	a0 := b.val("a0", "iadd", ddg.Int)
	a1 := b.val("a1", "iadd", ddg.Int, a0)
	a2 := b.val("a2", "imul", ddg.Int, a1)
	l0 := b.val("l0", "load", ddg.Float, a0)
	l1 := b.val("l1", "load", ddg.Float, a1)
	l2 := b.val("l2", "load", ddg.Float, a2)
	f0 := b.val("f0", "fmul", ddg.Float, l0, l1)
	f1 := b.val("f1", "fadd", ddg.Float, f0, l2)
	b.op("st", "store", f1, a2)
	b.val("a3", "iadd", ddg.Int, a2)
	return b.finish()
}

// ---------------------------------------------------------------------------

// All returns the full kernel suite in deterministic order.
func All() []Spec {
	specs := []Spec{
		{"fig2", "paper", "Figure 2 example: four values, one long latency", Figure2},
		{"lin-daxpy", "linpack", "y[i] += a*x[i] with address updates", daxpy},
		{"lin-daxpy-u4", "linpack", "daxpy unrolled 4x (high bandwidth)", daxpyU4},
		{"lin-ddot", "linpack", "dot product, unrolled twice", ddot},
		{"lin-dscal", "linpack", "x[i] = a*x[i], unrolled twice", dscal},
		{"liv-l1", "livermore", "hydro fragment", livL1},
		{"liv-l2", "livermore", "ICCG excerpt", livL2},
		{"liv-l3", "livermore", "inner product", livL3},
		{"liv-l4", "livermore", "banded linear equations", livL4},
		{"liv-l5", "livermore", "tri-diagonal elimination", livL5},
		{"liv-l7", "livermore", "equation of state (large expression)", livL7},
		{"liv-l9", "livermore", "integrate predictors (shared coefficients)", livL9},
		{"liv-l10", "livermore", "difference predictors (stored chain)", livL10},
		{"liv-l11", "livermore", "first sum", livL11},
		{"liv-l12", "livermore", "first difference", livL12},
		{"liv-l18", "livermore", "2-D explicit hydrodynamics fragment", livL18},
		{"whet-p3", "whetstone", "module 3 arithmetic mix", whetP3},
		{"whet-p4", "whetstone", "integer arithmetic module", whetP4},
		{"whet-p8", "whetstone", "procedure with divisions", whetP8},
		{"spec-swim", "specfp", "shallow water stencil", swimStencil},
		{"spec-tomcatv", "specfp", "mesh residual with shared temps", tomcatvBody},
		{"spec-fpppp", "specfp", "long chain with divisions", fpppChain},
		{"spec-mgrid", "specfp", "3-D residual stencil", mgridResidual},
		{"spec-su2cor", "specfp", "complex multiply-accumulate", su2corComplexMAC},
		{"syn-wide8", "synthetic", "eight parallel loads, reduction tree", wideLoads},
		{"syn-chain6", "synthetic", "pure dependence chain", chain},
		{"syn-fork4", "synthetic", "fan-out/fan-in, 4 potential killers", forkJoin},
		{"syn-diamond", "synthetic", "stacked diamonds", diamondLadder},
		{"syn-mixed", "synthetic", "int address + float compute", mixedTypes},
	}
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// ByName returns the kernel spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ByNameMust is ByName for known-good names (panics otherwise); convenient
// in examples and benchmarks.
func ByNameMust(name string) Spec {
	s, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("kernels: unknown kernel %q", name))
	}
	return s
}

// Suite builds every kernel for the given machine kind.
func Suite(machine ddg.MachineKind) []*ddg.Graph {
	specs := All()
	out := make([]*ddg.Graph, len(specs))
	for i, s := range specs {
		out[i] = s.Build(machine)
	}
	return out
}
