package lp

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveLPSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, 0 ≤ x,y ≤ 10. Optimum (4,0) = 12.
	m := NewModel("simple", Maximize)
	x := m.NewVar(0, 10, false, "x")
	y := m.NewVar(0, 10, false, "y")
	m.SetObjCoef(x, 3)
	m.SetObjCoef(y, 2)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, LE, 4, "c1")
	m.AddConstr([]Term{{x, 1}, {y, 3}}, LE, 6, "c2")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal {
		t.Fatalf("status=%v", sol.Status)
	}
	if !almostEq(sol.Obj, 12) {
		t.Fatalf("obj=%g, want 12", sol.Obj)
	}
}

func TestSolveLPClassic(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6. Optimum (3, 1.5) = 21.
	m := NewModel("classic", Maximize)
	x := m.NewVar(0, 100, false, "x")
	y := m.NewVar(0, 100, false, "y")
	m.SetObjCoef(x, 5)
	m.SetObjCoef(y, 4)
	m.AddConstr([]Term{{x, 6}, {y, 4}}, LE, 24, "c1")
	m.AddConstr([]Term{{x, 1}, {y, 2}}, LE, 6, "c2")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 21) {
		t.Fatalf("status=%v obj=%g, want optimal 21", sol.Status, sol.Obj)
	}
	if !almostEq(sol.X[x], 3) || !almostEq(sol.X[y], 1.5) {
		t.Fatalf("x=%g y=%g, want 3, 1.5", sol.X[x], sol.X[y])
	}
}

func TestSolveLPWithGEAndEQ(t *testing.T) {
	// min x + y s.t. x + y ≥ 3, x − y = 1, bounds [0, 10]. Optimum (2,1) = 3.
	m := NewModel("ge-eq", Minimize)
	x := m.NewVar(0, 10, false, "x")
	y := m.NewVar(0, 10, false, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, GE, 3, "c1")
	m.AddConstr([]Term{{x, 1}, {y, -1}}, EQ, 1, "c2")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 3) {
		t.Fatalf("status=%v obj=%g, want optimal 3", sol.Status, sol.Obj)
	}
	if !almostEq(sol.X[x], 2) || !almostEq(sol.X[y], 1) {
		t.Fatalf("x=%g y=%g, want 2, 1", sol.X[x], sol.X[y])
	}
}

func TestSolveLPNonzeroLowerBounds(t *testing.T) {
	// min x s.t. x + y ≥ 10, y ≤ 4, x ∈ [2, 20], y ∈ [3, 20]. Optimum x=6.
	m := NewModel("bounds", Minimize)
	x := m.NewVar(2, 20, false, "x")
	y := m.NewVar(3, 20, false, "y")
	m.SetObjCoef(x, 1)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, GE, 10, "c1")
	m.AddConstr([]Term{{y, 1}}, LE, 4, "c2")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 6) {
		t.Fatalf("status=%v obj=%g x=%v, want optimal 6", sol.Status, sol.Obj, sol.X)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	m := NewModel("infeasible", Minimize)
	x := m.NewVar(0, 1, false, "x")
	m.AddConstr([]Term{{x, 1}}, GE, 5, "impossible")
	sol := m.SolveLP()
	if sol.Status != StatusInfeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	m := NewModel("unbounded", Maximize)
	x := m.NewVar(0, math.Inf(1), false, "x")
	y := m.NewVar(0, math.Inf(1), false, "y")
	m.SetObjCoef(x, 1)
	m.AddConstr([]Term{{x, 1}, {y, -1}}, LE, 1, "c") // x can grow with y
	sol := m.SolveLP()
	if sol.Status != StatusUnbounded {
		t.Fatalf("status=%v, want unbounded", sol.Status)
	}
}

func TestSolveLPEqualityOnly(t *testing.T) {
	// x + y = 2, x − y = 0 → x = y = 1.
	m := NewModel("eq", Minimize)
	x := m.NewVar(-5, 5, false, "x")
	y := m.NewVar(-5, 5, false, "y")
	m.SetObjCoef(x, 1)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, EQ, 2, "c1")
	m.AddConstr([]Term{{x, 1}, {y, -1}}, EQ, 0, "c2")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.X[x], 1) || !almostEq(sol.X[y], 1) {
		t.Fatalf("status=%v x=%v, want x=y=1", sol.Status, sol.X)
	}
}

func TestSolveLPRedundantRows(t *testing.T) {
	// Duplicate equalities exercise the redundant-row path in phase 1.
	m := NewModel("redundant", Maximize)
	x := m.NewVar(0, 10, false, "x")
	m.SetObjCoef(x, 1)
	m.AddConstr([]Term{{x, 1}}, EQ, 4, "c1")
	m.AddConstr([]Term{{x, 2}}, EQ, 8, "c2")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 4) {
		t.Fatalf("status=%v obj=%g, want optimal 4", sol.Status, sol.Obj)
	}
}

func TestSolveKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50 → 220.
	m := NewModel("knapsack", Maximize)
	vals := []float64{60, 100, 120}
	wts := []float64{10, 20, 30}
	vars := make([]Var, 3)
	terms := make([]Term, 3)
	for i := range vals {
		vars[i] = m.NewBinary("item")
		m.SetObjCoef(vars[i], vals[i])
		terms[i] = Term{vars[i], wts[i]}
	}
	m.AddConstr(terms, LE, 50, "cap")
	sol := m.Solve(Params{})
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 220) {
		t.Fatalf("status=%v obj=%g, want optimal 220", sol.Status, sol.Obj)
	}
	if sol.IntValue(vars[0]) != 0 || sol.IntValue(vars[1]) != 1 || sol.IntValue(vars[2]) != 1 {
		t.Fatalf("selection=%v, want items 1 and 2", sol.X)
	}
}

func TestSolveIntegerRounding(t *testing.T) {
	// LP optimum is fractional; integer optimum differs.
	// max x + y s.t. 2x + y ≤ 3, x + 2y ≤ 3, x,y ∈ {0,1,2}. LP opt (1,1)=2.
	m := NewModel("round", Maximize)
	x := m.NewVar(0, 2, true, "x")
	y := m.NewVar(0, 2, true, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]Term{{x, 2}, {y, 1}}, LE, 3, "c1")
	m.AddConstr([]Term{{x, 1}, {y, 2}}, LE, 3, "c2")
	sol := m.Solve(Params{})
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 2) {
		t.Fatalf("status=%v obj=%g, want optimal 2", sol.Status, sol.Obj)
	}
}

func TestSolveMILPInfeasible(t *testing.T) {
	m := NewModel("milp-infeasible", Minimize)
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	m.AddConstr([]Term{{x, 1}, {y, 1}}, GE, 3, "impossible")
	sol := m.Solve(Params{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestSolveBinaryLogic(t *testing.T) {
	// Exactly-one constraint with preferences.
	m := NewModel("logic", Maximize)
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	c := m.NewBinary("c")
	m.SetObjCoef(a, 1)
	m.SetObjCoef(b, 5)
	m.SetObjCoef(c, 3)
	m.AddConstr([]Term{{a, 1}, {b, 1}, {c, 1}}, EQ, 1, "one")
	sol := m.Solve(Params{})
	if sol.Status != StatusOptimal || sol.IntValue(b) != 1 {
		t.Fatalf("status=%v X=%v, want b chosen", sol.Status, sol.X)
	}
}

func TestSolveMixedIntegerContinuous(t *testing.T) {
	// min 2x + 3y, x integer, y continuous; x + y ≥ 3.6; x ≤ 2.
	// Best: x=2, y=1.6 → 8.8.
	m := NewModel("mixed", Minimize)
	x := m.NewVar(0, 2, true, "x")
	y := m.NewVar(0, 10, false, "y")
	m.SetObjCoef(x, 2)
	m.SetObjCoef(y, 3)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, GE, 3.6, "c")
	sol := m.Solve(Params{})
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 8.8) {
		t.Fatalf("status=%v obj=%g, want 8.8", sol.Status, sol.Obj)
	}
}

func TestSolveObjOffset(t *testing.T) {
	m := NewModel("offset", Maximize)
	x := m.NewBinary("x")
	m.SetObjCoef(x, 2)
	m.SetObjOffset(10)
	sol := m.Solve(Params{})
	if !almostEq(sol.Obj, 12) {
		t.Fatalf("obj=%g, want 12", sol.Obj)
	}
}

func TestSolveNodeLimit(t *testing.T) {
	m := NewModel("limit", Maximize)
	// A problem that needs branching.
	x := m.NewVar(0, 5, true, "x")
	y := m.NewVar(0, 5, true, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]Term{{x, 2}, {y, 3}}, LE, 7.5, "c")
	sol := m.Solve(Params{MaxNodes: 1})
	if sol.Status != StatusLimit && sol.Status != StatusFeasible {
		t.Fatalf("status=%v, want limit or feasible", sol.Status)
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel("acc", Minimize)
	x := m.NewVar(1, 3, true, "xx")
	m.AddConstr([]Term{{x, 1}}, LE, 2, "c")
	if m.NumVars() != 1 || m.NumConstrs() != 1 || m.NumIntVars() != 1 {
		t.Fatal("counts wrong")
	}
	if m.VarName(x) != "xx" || !m.IsInteger(x) {
		t.Fatal("var metadata wrong")
	}
	if lo, hi := m.Bounds(x); lo != 1 || hi != 3 {
		t.Fatal("bounds wrong")
	}
	if m.Name() != "acc" || m.Sense() != Minimize {
		t.Fatal("model metadata wrong")
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
}

func TestMergedDuplicateTerms(t *testing.T) {
	// x + x ≤ 2 must behave as 2x ≤ 2.
	m := NewModel("dup", Maximize)
	x := m.NewVar(0, 10, false, "x")
	m.SetObjCoef(x, 1)
	m.AddConstr([]Term{{x, 1}, {x, 1}}, LE, 2, "c")
	sol := m.SolveLP()
	if !almostEq(sol.Obj, 1) {
		t.Fatalf("obj=%g, want 1", sol.Obj)
	}
}

// bruteForceILP enumerates all integer assignments of a pure-integer model.
func bruteForceILP(m *Model) (bool, float64) {
	n := m.NumVars()
	lo := make([]int64, n)
	hi := make([]int64, n)
	for i := 0; i < n; i++ {
		l, h := m.Bounds(Var(i))
		lo[i], hi[i] = int64(l), int64(h)
	}
	x := make([]int64, n)
	bestFound := false
	var bestObj float64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, c := range m.constrs {
				lhs := 0.0
				for _, t := range c.terms {
					lhs += t.Coef * float64(x[t.Var])
				}
				switch c.rel {
				case LE:
					if lhs > c.rhs+1e-9 {
						return
					}
				case GE:
					if lhs < c.rhs-1e-9 {
						return
					}
				case EQ:
					if math.Abs(lhs-c.rhs) > 1e-9 {
						return
					}
				}
			}
			obj := m.objOff
			for v, cf := range m.objCoef {
				obj += cf * float64(x[v])
			}
			if !bestFound ||
				(m.sense == Maximize && obj > bestObj) ||
				(m.sense == Minimize && obj < bestObj) {
				bestFound, bestObj = true, obj
			}
			return
		}
		for v := lo[i]; v <= hi[i]; v++ {
			x[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return bestFound, bestObj
}

// TestSolveMatchesBruteForce cross-validates branch and bound against
// exhaustive enumeration on random small pure-integer programs.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		sense := Minimize
		if rng.Intn(2) == 0 {
			sense = Maximize
		}
		m := NewModel("rand", sense)
		for i := 0; i < nv; i++ {
			m.SetObjCoef(m.NewVar(0, float64(1+rng.Intn(3)), true, "v"), float64(rng.Intn(11)-5))
		}
		for c := 0; c < nc; c++ {
			var terms []Term
			for i := 0; i < nv; i++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{Var(i), float64(rng.Intn(7) - 3)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
			m.AddConstr(terms, rel, float64(rng.Intn(9)-2), "c")
		}
		found, want := bruteForceILP(m)
		sol := m.Solve(Params{})
		if !found {
			if sol.Status != StatusInfeasible {
				t.Fatalf("trial %d: solver says %v, brute force says infeasible\n%s",
					trial, sol.Status, m.String())
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: solver says %v, brute force found obj=%g\n%s",
				trial, sol.Status, want, m.String())
		}
		if !almostEq(sol.Obj, want) {
			t.Fatalf("trial %d: solver obj=%g, brute force obj=%g\n%s",
				trial, sol.Obj, want, m.String())
		}
	}
}

// TestLPWeakDuality checks that on random feasible bounded LPs, the reported
// optimum is at least as good as any feasible corner we can sample.
func TestLPRandomFeasiblePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nv := 2 + rng.Intn(3)
		m := NewModel("randlp", Maximize)
		for i := 0; i < nv; i++ {
			m.SetObjCoef(m.NewVar(0, 10, false, "v"), float64(rng.Intn(5)))
		}
		// Constraints with non-negative coefficients keep origin feasible.
		for c := 0; c < 1+rng.Intn(3); c++ {
			var terms []Term
			for i := 0; i < nv; i++ {
				terms = append(terms, Term{Var(i), float64(rng.Intn(4))})
			}
			m.AddConstr(terms, LE, float64(5+rng.Intn(20)), "c")
		}
		sol := m.SolveLP()
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status=%v, want optimal (origin is feasible)", trial, sol.Status)
		}
		// Sample random feasible points; none may beat the optimum.
		for k := 0; k < 20; k++ {
			x := make([]float64, nv)
			for i := range x {
				x[i] = rng.Float64() * 10
			}
			feasible := true
			for _, c := range m.constrs {
				lhs := 0.0
				for _, tm := range c.terms {
					lhs += tm.Coef * x[tm.Var]
				}
				if lhs > c.rhs+1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for v, cf := range m.objCoef {
				obj += cf * x[v]
			}
			if obj > sol.Obj+1e-6 {
				t.Fatalf("trial %d: sampled point beats 'optimum' (%g > %g)", trial, obj, sol.Obj)
			}
		}
	}
}
