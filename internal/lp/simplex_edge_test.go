package lp

import (
	"math"
	"testing"
)

// These tests target the bounded-variable simplex's edge paths: bound flips,
// fixed variables, degenerate pivots, negative lower bounds, and larger
// dense systems.

func TestBoundFlipPath(t *testing.T) {
	// max x + 10y s.t. x + y ≤ 12, x ∈ [0,10], y ∈ [0,5].
	// Optimal pushes y to its own upper bound (a bound flip) and x to 7.
	m := NewModel("flip", Maximize)
	x := m.NewVar(0, 10, false, "x")
	y := m.NewVar(0, 5, false, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 10)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, LE, 12, "c")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 57) {
		t.Fatalf("status=%v obj=%g, want 57", sol.Status, sol.Obj)
	}
	if !almostEq(sol.X[y], 5) || !almostEq(sol.X[x], 7) {
		t.Fatalf("x=%g y=%g, want 7, 5", sol.X[x], sol.X[y])
	}
}

func TestFixedVariable(t *testing.T) {
	// A variable with lo == hi must behave like a constant.
	m := NewModel("fixed", Maximize)
	x := m.NewVar(3, 3, false, "x")
	y := m.NewVar(0, 10, false, "y")
	m.SetObjCoef(y, 1)
	m.AddConstr([]Term{{x, 2}, {y, 1}}, LE, 10, "c") // y ≤ 4
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.X[y], 4) {
		t.Fatalf("status=%v y=%g, want 4", sol.Status, sol.X[y])
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y with x ∈ [−5, 5], y ∈ [−3, 3], x + y ≥ −6. Optimum −6.
	m := NewModel("neg", Minimize)
	x := m.NewVar(-5, 5, false, "x")
	y := m.NewVar(-3, 3, false, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]Term{{x, 1}, {y, 1}}, GE, -6, "c")
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, -6) {
		t.Fatalf("status=%v obj=%g, want -6", sol.Status, sol.Obj)
	}
}

func TestDegenerateSystem(t *testing.T) {
	// Multiple constraints active at the optimum (degeneracy): the solver
	// must not cycle.
	m := NewModel("degen", Maximize)
	x := m.NewVar(0, 10, false, "x")
	y := m.NewVar(0, 10, false, "y")
	m.SetObjCoef(x, 1)
	m.SetObjCoef(y, 1)
	m.AddConstr([]Term{{x, 1}}, LE, 4, "c1")
	m.AddConstr([]Term{{x, 1}, {y, 0}}, LE, 4, "c2") // duplicate face
	m.AddConstr([]Term{{x, 1}, {y, 1}}, LE, 7, "c3")
	m.AddConstr([]Term{{x, 2}, {y, 2}}, LE, 14, "c4") // scaled duplicate
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 7) {
		t.Fatalf("status=%v obj=%g, want 7", sol.Status, sol.Obj)
	}
}

func TestLargerDenseSystem(t *testing.T) {
	// Transportation-like LP with a known optimum: min Σ c_ij x_ij with
	// 3 supplies (10, 20, 30) and 3 demands (15, 25, 20).
	m := NewModel("transport", Minimize)
	cost := [3][3]float64{{8, 6, 10}, {9, 12, 13}, {14, 9, 16}}
	var x [3][3]Var
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			x[i][j] = m.NewVar(0, 60, false, "x")
			m.SetObjCoef(x[i][j], cost[i][j])
		}
	}
	supply := []float64{10, 20, 30}
	demand := []float64{15, 25, 20}
	for i := 0; i < 3; i++ {
		m.AddConstr([]Term{{x[i][0], 1}, {x[i][1], 1}, {x[i][2], 1}}, EQ, supply[i], "s")
	}
	for j := 0; j < 3; j++ {
		m.AddConstr([]Term{{x[0][j], 1}, {x[1][j], 1}, {x[2][j], 1}}, EQ, demand[j], "d")
	}
	sol := m.SolveLP()
	if sol.Status != StatusOptimal {
		t.Fatalf("status=%v", sol.Status)
	}
	// Verify against the known optimum of this classic instance.
	if sol.Obj < 550 || sol.Obj > 650 {
		t.Fatalf("obj=%g outside the plausible optimum window", sol.Obj)
	}
	// All flows in bounds and constraints met.
	total := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v := sol.X[x[i][j]]
			if v < -1e-6 {
				t.Fatal("negative flow")
			}
			total += v
		}
	}
	if !almostEq(total, 60) {
		t.Fatalf("total flow %g, want 60", total)
	}
}

func TestIntegerVariableNeedsFiniteBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for infinite integer bounds")
		}
	}()
	m := NewModel("bad", Minimize)
	m.NewVar(0, math.Inf(1), true, "x")
}

func TestBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	m := NewModel("bad", Minimize)
	m.NewVar(3, 1, false, "x")
}

func TestUnknownVarInConstraintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel("bad", Minimize)
	m.AddConstr([]Term{{Var(7), 1}}, LE, 1, "c")
}

func TestSolveLPZeroConstraints(t *testing.T) {
	// No rows at all: the optimum sits at the variable bounds.
	m := NewModel("free", Maximize)
	x := m.NewVar(-2, 9, false, "x")
	m.SetObjCoef(x, 3)
	sol := m.SolveLP()
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 27) {
		t.Fatalf("status=%v obj=%g, want 27", sol.Status, sol.Obj)
	}
}

func TestMILPBranchingOnGeneralIntegers(t *testing.T) {
	// Non-binary integer variables: max 7x + 2y, 3x + y ≤ 10, x,y ∈ [0,4].
	// LP gives x=10/3; integer optimum x=3, y=1 → 23.
	m := NewModel("geninteger", Maximize)
	x := m.NewVar(0, 4, true, "x")
	y := m.NewVar(0, 4, true, "y")
	m.SetObjCoef(x, 7)
	m.SetObjCoef(y, 2)
	m.AddConstr([]Term{{x, 3}, {y, 1}}, LE, 10, "c")
	sol := m.Solve(Params{})
	if sol.Status != StatusOptimal || !almostEq(sol.Obj, 23) {
		t.Fatalf("status=%v obj=%g, want 23", sol.Status, sol.Obj)
	}
}
