// Package lp implements a small, dependency-free linear and mixed-integer
// linear programming solver: a bounded-variable two-phase primal simplex and
// a branch-and-bound layer over it.
//
// It plays the role CPLEX plays in the paper: an exact solver for the intLP
// systems of Sections 3 and 4. All models produced by this project have
// finite variable bounds (the schedule horizon T bounds every quantity), so
// the solver does not need to be clever about unbounded rays, although it
// detects them.
package lp

import (
	"fmt"
	"math"
)

// Sense is the optimization direction of a model.
type Sense int

const (
	// Minimize the objective function.
	Minimize Sense = iota
	// Maximize the objective function.
	Maximize
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is ≤.
	LE Rel = iota
	// GE is ≥.
	GE
	// EQ is =.
	EQ
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Var identifies a variable of a Model.
type Var int

// Term is one coefficient·variable product of a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

type varInfo struct {
	lo, hi  float64
	integer bool
	name    string
}

type constr struct {
	terms []Term
	rel   Rel
	rhs   float64
	name  string
}

// Model is a mixed-integer linear program under construction.
type Model struct {
	name    string
	sense   Sense
	vars    []varInfo
	objCoef []float64
	objOff  float64
	constrs []constr
}

// NewModel creates an empty model with the given optimization sense.
func NewModel(name string, sense Sense) *Model {
	return &Model{name: name, sense: sense}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Sense returns the optimization direction.
func (m *Model) Sense() Sense { return m.sense }

// NewVar adds a continuous or integer variable with bounds [lo, hi] and
// returns its identifier. Bounds must satisfy lo ≤ hi and be finite for
// integer variables (branch and bound requires finite integer domains).
func (m *Model) NewVar(lo, hi float64, integer bool, name string) Var {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		panic(fmt.Sprintf("lp: bad bounds [%g,%g] for %s", lo, hi, name))
	}
	if integer && (math.IsInf(lo, 0) || math.IsInf(hi, 0)) {
		panic(fmt.Sprintf("lp: integer variable %s needs finite bounds", name))
	}
	m.vars = append(m.vars, varInfo{lo: lo, hi: hi, integer: integer, name: name})
	m.objCoef = append(m.objCoef, 0)
	return Var(len(m.vars) - 1)
}

// NewBinary adds a {0,1} variable.
func (m *Model) NewBinary(name string) Var {
	return m.NewVar(0, 1, true, name)
}

// SetObjCoef sets the objective coefficient of v.
func (m *Model) SetObjCoef(v Var, c float64) { m.objCoef[v] = c }

// AddObjCoef adds c to the objective coefficient of v.
func (m *Model) AddObjCoef(v Var, c float64) { m.objCoef[v] += c }

// SetObjOffset sets a constant added to every objective value.
func (m *Model) SetObjOffset(c float64) { m.objOff = c }

// AddConstr adds the linear constraint Σ terms rel rhs and returns its row
// index. Terms referring to the same variable are accumulated.
func (m *Model) AddConstr(terms []Term, rel Rel, rhs float64, name string) int {
	merged := make(map[Var]float64, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			panic(fmt.Sprintf("lp: constraint %s uses unknown variable %d", name, t.Var))
		}
		merged[t.Var] += t.Coef
	}
	compact := make([]Term, 0, len(merged))
	for v := Var(0); int(v) < len(m.vars); v++ {
		if c, ok := merged[v]; ok && c != 0 {
			compact = append(compact, Term{Var: v, Coef: c})
		}
	}
	m.constrs = append(m.constrs, constr{terms: compact, rel: rel, rhs: rhs, name: name})
	return len(m.constrs) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstrs returns the number of constraints.
func (m *Model) NumConstrs() int { return len(m.constrs) }

// NumIntVars returns the number of integer (including binary) variables.
func (m *Model) NumIntVars() int {
	n := 0
	for _, v := range m.vars {
		if v.integer {
			n++
		}
	}
	return n
}

// VarName returns the name of v.
func (m *Model) VarName(v Var) string { return m.vars[v].name }

// ObjCoef returns the objective coefficient of v.
func (m *Model) ObjCoef(v Var) float64 { return m.objCoef[v] }

// ObjOffset returns the constant added to every objective value.
func (m *Model) ObjOffset() float64 { return m.objOff }

// Constr returns row i: its terms (shared storage — treat as read-only, the
// terms are already merged and nonzero), relation, and right-hand side.
func (m *Model) Constr(i int) ([]Term, Rel, float64) {
	c := &m.constrs[i]
	return c.terms, c.rel, c.rhs
}

// ConstrName returns the name of row i.
func (m *Model) ConstrName(i int) string { return m.constrs[i].name }

// Bounds returns the declared bounds of v.
func (m *Model) Bounds(v Var) (lo, hi float64) { return m.vars[v].lo, m.vars[v].hi }

// IsInteger reports whether v is an integer variable.
func (m *Model) IsInteger(v Var) bool { return m.vars[v].integer }

// String renders the model in an LP-like textual format for debugging.
func (m *Model) String() string {
	s := fmt.Sprintf("model %s: %s\n", m.name, map[Sense]string{Minimize: "min", Maximize: "max"}[m.sense])
	s += "  obj:"
	for v, c := range m.objCoef {
		if c != 0 {
			s += fmt.Sprintf(" %+g·%s", c, m.vars[v].name)
		}
	}
	s += "\n"
	for _, c := range m.constrs {
		s += fmt.Sprintf("  %s:", c.name)
		for _, t := range c.terms {
			s += fmt.Sprintf(" %+g·%s", t.Coef, m.vars[t.Var].name)
		}
		s += fmt.Sprintf(" %s %g\n", c.rel, c.rhs)
	}
	return s
}
