package lp

import (
	"fmt"
	"io"
	"strings"
)

// WriteLP renders the model in the CPLEX LP text format, so any external
// solver can cross-check the in-repo one (the paper solved these systems
// with CPLEX). Variable names are sanitized to the LP-format alphabet and
// de-duplicated deterministically.
func (m *Model) WriteLP(w io.Writer) error {
	names := m.lpNames()
	if _, err := fmt.Fprintf(w, "\\ model %s\n", m.name); err != nil {
		return err
	}
	section := "Minimize"
	if m.sense == Maximize {
		section = "Maximize"
	}
	fmt.Fprintf(w, "%s\n obj:", section)
	wrote := false
	for v, c := range m.objCoef {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, " %+g %s", c, names[v])
		wrote = true
	}
	if !wrote {
		fmt.Fprintf(w, " 0 %s", names[0])
	}
	fmt.Fprintf(w, "\nSubject To\n")
	for i, c := range m.constrs {
		fmt.Fprintf(w, " c%d:", i)
		for _, t := range c.terms {
			fmt.Fprintf(w, " %+g %s", t.Coef, names[t.Var])
		}
		fmt.Fprintf(w, " %s %g\n", c.rel, c.rhs)
	}
	fmt.Fprintf(w, "Bounds\n")
	for v, info := range m.vars {
		fmt.Fprintf(w, " %g <= %s <= %g\n", info.lo, names[v], info.hi)
	}
	var generals []string
	for v, info := range m.vars {
		if info.integer {
			generals = append(generals, names[v])
		}
	}
	if len(generals) > 0 {
		fmt.Fprintf(w, "Generals\n %s\n", strings.Join(generals, " "))
	}
	_, err := fmt.Fprintf(w, "End\n")
	return err
}

// lpNames produces unique LP-format-safe variable names.
func (m *Model) lpNames() []string {
	names := make([]string, len(m.vars))
	seen := map[string]int{}
	for v, info := range m.vars {
		base := sanitizeLPName(info.name)
		if base == "" {
			base = "x"
		}
		name := fmt.Sprintf("%s_%d", base, v)
		if seen[name] > 0 {
			name = fmt.Sprintf("%s_%d_%d", base, v, seen[name])
		}
		seen[name]++
		names[v] = name
	}
	return names
}

func sanitizeLPName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	out := b.String()
	if out != "" && out[0] >= '0' && out[0] <= '9' {
		out = "v" + out
	}
	return out
}
