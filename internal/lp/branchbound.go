package lp

import (
	"context"
	"math"
	"time"
)

// Status is the outcome of a Solve call.
type Status int

const (
	// StatusOptimal means an optimal (integer-feasible) solution was proved.
	StatusOptimal Status = iota
	// StatusInfeasible means no feasible solution exists.
	StatusInfeasible
	// StatusUnbounded means the relaxation is unbounded in the optimization
	// direction (cannot happen for the bounded models of this project).
	StatusUnbounded
	// StatusFeasible means a feasible solution was found but a search limit
	// was hit before proving optimality.
	StatusFeasible
	// StatusLimit means a search limit was hit with no feasible solution.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusFeasible:
		return "feasible(limit)"
	default:
		return "limit"
	}
}

// Params bound the branch-and-bound search.
type Params struct {
	// MaxNodes caps the number of explored nodes (0 = default 200000).
	MaxNodes int
	// TimeLimit caps wall time (0 = none).
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (0 = default 1e-6).
	IntTol float64
}

func (p Params) withDefaults() Params {
	if p.MaxNodes == 0 {
		p.MaxNodes = 200000
	}
	if p.IntTol == 0 {
		p.IntTol = 1e-6
	}
	return p
}

// Solution is the result of a Solve call. X has one entry per model variable;
// integer variables are snapped to exact integers.
type Solution struct {
	Status Status
	Obj    float64
	X      []float64
	Nodes  int
	// Bound is the best proven dual bound in model sense: an upper bound on
	// the optimum for Maximize models, a lower bound for Minimize. When the
	// search completes (StatusOptimal/StatusInfeasible) it equals Obj; when a
	// limit is hit the true optimum lies in the interval between Obj and
	// Bound.
	Bound float64
	// Gap is |Obj − Bound|: zero when optimality was proved, otherwise the
	// absolute optimality gap of the capped search.
	Gap float64
}

// SolveLP solves only the continuous relaxation of the model.
func (m *Model) SolveLP() *Solution {
	lo := make([]float64, len(m.vars))
	hi := make([]float64, len(m.vars))
	for i, v := range m.vars {
		lo[i], hi[i] = v.lo, v.hi
	}
	st, x, obj := newSimplex(m, lo, hi).solve()
	sol := &Solution{Nodes: 1}
	switch st {
	case lpInfeasible:
		sol.Status = StatusInfeasible
	case lpUnbounded:
		sol.Status = StatusUnbounded
	case lpIterLimit:
		sol.Status = StatusLimit
	default:
		sol.Status = StatusOptimal
		sol.X = x
		sol.Obj = m.finalObj(obj)
		sol.Bound = sol.Obj
	}
	return sol
}

// finalObj converts the internal minimized objective back to model sense and
// applies the constant offset.
func (m *Model) finalObj(internal float64) float64 {
	if m.sense == Maximize {
		return -internal + m.objOff
	}
	return internal + m.objOff
}

type bbNode struct {
	lo, hi []float64
	depth  int
	// bound is the LP objective of the parent relaxation (internal minimize
	// sense): a valid lower bound on every solution in this subtree. Used to
	// report the dual bound when the search is capped.
	bound float64
}

// Solve runs branch and bound and returns the best integer solution found.
func (m *Model) Solve(p Params) *Solution {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper; SolveCtx is the threaded form
	return m.SolveCtx(context.Background(), p)
}

// SolveCtx is Solve under a context: cancellation interrupts the search
// between nodes and inside an in-flight simplex solve, returning the best
// solution found so far (as if a search limit had been hit).
func (m *Model) SolveCtx(ctx context.Context, p Params) *Solution {
	rootLo := make([]float64, len(m.vars))
	rootHi := make([]float64, len(m.vars))
	for i, v := range m.vars {
		rootLo[i], rootHi[i] = v.lo, v.hi
	}
	return m.SolveWithBounds(ctx, p, rootLo, rootHi)
}

// SolveWithBounds runs branch and bound over the model restricted to the
// given (tightened) variable bounds. The slices are not retained. It is the
// subtree-solve primitive other solver backends fall back to.
func (m *Model) SolveWithBounds(ctx context.Context, p Params, lo, hi []float64) *Solution {
	p = p.withDefaults()
	deadline := time.Time{}
	if p.TimeLimit > 0 {
		deadline = time.Now().Add(p.TimeLimit)
	}
	cancelled := func() bool {
		return ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline))
	}

	stack := []*bbNode{{lo: cloneBounds(lo), hi: cloneBounds(hi), bound: math.Inf(-1)}}

	var best *Solution
	bestObj := math.Inf(1) // internal sense: minimize
	nodes := 0
	limitHit := false
	// openBound tracks the least lower bound over subtrees abandoned by a
	// limit (internal minimize sense); +inf when the search is exhaustive.
	openBound := math.Inf(1)

	for len(stack) > 0 {
		if nodes >= p.MaxNodes || cancelled() {
			limitHit = true
			for _, n := range stack {
				openBound = math.Min(openBound, n.bound)
			}
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		spx := newSimplex(m, node.lo, node.hi)
		spx.cancel = cancelled
		st, x, obj := spx.solve()
		if st == lpInfeasible {
			continue
		}
		if st == lpUnbounded {
			return &Solution{Status: StatusUnbounded, Nodes: nodes}
		}
		if st == lpIterLimit {
			limitHit = true
			openBound = math.Min(openBound, node.bound)
			continue
		}
		if obj >= bestObj-1e-9 {
			continue // bound prune
		}
		// Find the most fractional integer variable.
		branch, fracDist := -1, p.IntTol
		for j, v := range m.vars {
			if !v.integer {
				continue
			}
			f := x[j] - math.Floor(x[j])
			dist := math.Min(f, 1-f)
			if dist > fracDist {
				branch, fracDist = j, dist
			}
		}
		if branch < 0 {
			// Integer feasible: snap and record.
			xi := make([]float64, len(x))
			copy(xi, x)
			for j, v := range m.vars {
				if v.integer {
					xi[j] = math.Round(xi[j])
				}
			}
			bestObj = obj
			best = &Solution{Status: StatusFeasible, Obj: m.finalObj(obj), X: xi}
			continue
		}
		// Branch: child with x ≤ floor and child with x ≥ ceil. Explore the
		// side nearer the fractional value first (pushed last).
		floorHi := math.Floor(x[branch])
		ceilLo := floorHi + 1
		down := &bbNode{lo: cloneBounds(node.lo), hi: cloneBounds(node.hi), depth: node.depth + 1, bound: obj}
		down.hi[branch] = floorHi
		up := &bbNode{lo: cloneBounds(node.lo), hi: cloneBounds(node.hi), depth: node.depth + 1, bound: obj}
		up.lo[branch] = ceilLo
		if x[branch]-floorHi > 0.5 {
			stack = append(stack, down, up) // explore up first
		} else {
			stack = append(stack, up, down) // explore down first
		}
	}

	finish := func(s *Solution) *Solution {
		s.Nodes = nodes
		switch s.Status {
		case StatusOptimal, StatusInfeasible:
			s.Bound = s.Obj
		default:
			// The optimum is bracketed by the incumbent and the least bound
			// of the abandoned subtrees (converted back to model sense).
			s.Bound = m.finalObj(math.Min(openBound, bestObj))
			if s.Status == StatusFeasible {
				s.Gap = math.Abs(s.Obj - s.Bound)
			}
		}
		return s
	}
	switch {
	case best != nil && !limitHit:
		best.Status = StatusOptimal
		return finish(best)
	case best != nil:
		best.Status = StatusFeasible
		return finish(best)
	case limitHit:
		return finish(&Solution{Status: StatusLimit})
	default:
		return finish(&Solution{Status: StatusInfeasible})
	}
}

func cloneBounds(b []float64) []float64 {
	out := make([]float64, len(b))
	copy(out, b)
	return out
}

// Value returns the solution value of v rounded for integer variables.
func (s *Solution) Value(v Var) float64 {
	return s.X[v]
}

// IntValue returns the solution value of v as an int64.
func (s *Solution) IntValue(v Var) int64 {
	return int64(math.Round(s.X[v]))
}
