package lp

import (
	"strings"
	"testing"
)

func TestWriteLPFormat(t *testing.T) {
	m := NewModel("demo", Maximize)
	x := m.NewVar(0, 10, true, "sigma(a)")
	y := m.NewVar(-2, 3, false, "y")
	m.SetObjCoef(x, 3)
	m.SetObjCoef(y, -1)
	m.AddConstr([]Term{{x, 1}, {y, 2}}, LE, 7, "cap")
	m.AddConstr([]Term{{x, 1}}, GE, 1, "floor")

	var b strings.Builder
	if err := m.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Maximize", "Subject To", "Bounds", "Generals", "End",
		"+3 sigma_a__0", "<= 7", ">= 1", "0 <= sigma_a__0 <= 10", "-2 <= y_1 <= 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
	// The continuous variable must not appear in Generals.
	generals := out[strings.Index(out, "Generals"):]
	if strings.Contains(generals, "y_1") {
		t.Fatalf("continuous variable listed as integer:\n%s", out)
	}
}

func TestWriteLPEmptyObjective(t *testing.T) {
	m := NewModel("empty", Minimize)
	m.NewVar(0, 1, false, "x")
	var b strings.Builder
	if err := m.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Minimize") {
		t.Fatal("missing sense")
	}
}

func TestSanitizeLPName(t *testing.T) {
	for in, want := range map[string]string{
		"sigma(a)": "sigma_a_",
		"x":        "x",
		"9lives":   "v9lives",
		"":         "",
	} {
		if got := sanitizeLPName(in); got != want {
			t.Fatalf("sanitize(%q)=%q, want %q", in, got, want)
		}
	}
}
