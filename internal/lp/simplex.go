package lp

import (
	"math"
)

// lpStatus is the outcome of one LP relaxation solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpUnbounded
	lpIterLimit
)

const (
	pivTol   = 1e-9  // minimum |pivot| accepted
	costTol  = 1e-7  // reduced-cost optimality tolerance
	feasTol  = 1e-7  // primal feasibility tolerance
	blandCut = 5000  // iterations before switching to Bland's rule
	iterCap  = 50000 // hard per-LP iteration limit
)

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	isBasic
)

// simplex is a dense bounded-variable two-phase primal simplex solver.
// Columns 0..n-1 are the structural variables; then one slack per inequality
// row; then one artificial per row. All rows are equalities over this
// extended column set.
type simplex struct {
	m, nStruct, nSlack, nTotal int
	artStart                   int

	tab    [][]float64 // m × nTotal working tableau (starts as A, pivoted in place)
	rhs    []float64   // original right-hand side after row normalization
	lo, hi []float64   // bounds per column
	cost   []float64   // phase-2 objective (minimize)

	basis  []int       // basis[i] = column basic in row i
	status []varStatus // per column
	xval   []float64   // value of each nonbasic column (lo or hi)
	xB     []float64   // value of the basic variable of each row
	d      []float64   // reduced costs per column
	iter   int
	cancel func() bool // polled between pivots; true aborts with lpIterLimit
}

// newSimplex builds the standard-form tableau for the model with the given
// (possibly tightened) structural bounds.
func newSimplex(m *Model, lo, hi []float64) *simplex {
	nStruct := len(m.vars)
	nSlack := 0
	for _, c := range m.constrs {
		if c.rel != EQ {
			nSlack++
		}
	}
	rows := len(m.constrs)
	s := &simplex{
		m:        rows,
		nStruct:  nStruct,
		nSlack:   nSlack,
		nTotal:   nStruct + nSlack + rows,
		artStart: nStruct + nSlack,
	}
	s.tab = make([][]float64, rows)
	for i := range s.tab {
		s.tab[i] = make([]float64, s.nTotal)
	}
	s.rhs = make([]float64, rows)
	s.lo = make([]float64, s.nTotal)
	s.hi = make([]float64, s.nTotal)
	s.cost = make([]float64, s.nTotal)
	copy(s.lo, lo)
	copy(s.hi, hi)
	for j := 0; j < nStruct; j++ {
		s.cost[j] = m.objCoef[j]
		if m.sense == Maximize {
			s.cost[j] = -s.cost[j]
		}
	}
	slack := nStruct
	for i, c := range m.constrs {
		for _, t := range c.terms {
			s.tab[i][int(t.Var)] += t.Coef
		}
		s.rhs[i] = c.rhs
		switch c.rel {
		case LE:
			s.tab[i][slack] = 1
			s.lo[slack], s.hi[slack] = 0, math.Inf(1)
			slack++
		case GE:
			s.tab[i][slack] = -1
			s.lo[slack], s.hi[slack] = 0, math.Inf(1)
			slack++
		}
	}
	// Artificials: one per row, configured in solve().
	for i := 0; i < rows; i++ {
		a := s.artStart + i
		s.lo[a], s.hi[a] = 0, math.Inf(1)
	}
	return s
}

// nonbasicStart picks the starting bound of a nonbasic column: the finite
// bound nearest zero (every structural and artificial bound is finite below).
func (s *simplex) nonbasicStart(j int) float64 {
	l, u := s.lo[j], s.hi[j]
	switch {
	case !math.IsInf(l, 0) && !math.IsInf(u, 0):
		if math.Abs(l) <= math.Abs(u) {
			s.status[j] = atLower
			return l
		}
		s.status[j] = atUpper
		return u
	case !math.IsInf(l, 0):
		s.status[j] = atLower
		return l
	default:
		s.status[j] = atUpper
		return u
	}
}

// solve runs both phases and returns the status plus the structural solution.
func (s *simplex) solve() (lpStatus, []float64, float64) {
	s.basis = make([]int, s.m)
	s.status = make([]varStatus, s.nTotal)
	s.xval = make([]float64, s.nTotal)
	s.xB = make([]float64, s.m)
	s.d = make([]float64, s.nTotal)

	// Start: all structural and slack columns nonbasic at a bound.
	for j := 0; j < s.artStart; j++ {
		s.xval[j] = s.nonbasicStart(j)
	}
	// Residual r_i = rhs_i − Σ_j tab[i][j]·xval[j]; artificial i covers it.
	for i := 0; i < s.m; i++ {
		r := s.rhs[i]
		for j := 0; j < s.artStart; j++ {
			if s.tab[i][j] != 0 && s.xval[j] != 0 {
				r -= s.tab[i][j] * s.xval[j]
			}
		}
		a := s.artStart + i
		if r < 0 {
			// Flip the row so the artificial starts non-negative.
			for j := 0; j < s.nTotal; j++ {
				s.tab[i][j] = -s.tab[i][j]
			}
			s.rhs[i] = -s.rhs[i]
			r = -r
		}
		s.tab[i][a] = 1
		s.basis[i] = a
		s.status[a] = isBasic
		s.xB[i] = r
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, s.nTotal)
	for i := 0; i < s.m; i++ {
		phase1[s.artStart+i] = 1
	}
	s.computeReducedCosts(phase1)
	st := s.iterate(phase1)
	if st == lpIterLimit {
		return lpIterLimit, nil, 0
	}
	if st == lpUnbounded {
		// Phase 1 objective is bounded below by 0; cannot happen.
		return lpInfeasible, nil, 0
	}
	if s.phaseObj(phase1) > 1e-6 {
		return lpInfeasible, nil, 0
	}
	s.driveOutArtificials()
	// Freeze artificials at zero so phase 2 cannot reuse them.
	for i := 0; i < s.m; i++ {
		a := s.artStart + i
		s.lo[a], s.hi[a] = 0, 0
		if s.status[a] != isBasic {
			s.xval[a] = 0
			s.status[a] = atLower
		}
	}

	// Phase 2: the real objective.
	s.computeReducedCosts(s.cost)
	st = s.iterate(s.cost)
	switch st {
	case lpIterLimit:
		return lpIterLimit, nil, 0
	case lpUnbounded:
		return lpUnbounded, nil, 0
	}
	x := make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		x[j] = s.colValue(j)
	}
	obj := 0.0
	for j := 0; j < s.nStruct; j++ {
		obj += s.cost[j] * x[j]
	}
	return lpOptimal, x, obj
}

func (s *simplex) colValue(j int) float64 {
	if s.status[j] == isBasic {
		for i, b := range s.basis {
			if b == j {
				return s.xB[i]
			}
		}
	}
	return s.xval[j]
}

func (s *simplex) phaseObj(c []float64) float64 {
	obj := 0.0
	for i, b := range s.basis {
		obj += c[b] * s.xB[i]
	}
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] != isBasic && c[j] != 0 {
			obj += c[j] * s.xval[j]
		}
	}
	return obj
}

// computeReducedCosts sets d[j] = c[j] − Σ_i c[basis[i]]·tab[i][j].
func (s *simplex) computeReducedCosts(c []float64) {
	copy(s.d, c)
	for i, b := range s.basis {
		cb := c[b]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j < s.nTotal; j++ {
			if row[j] != 0 {
				s.d[j] -= cb * row[j]
			}
		}
	}
}

// iterate runs primal simplex iterations until optimal/unbounded/limit.
// Cancellation is polled every few pivots so an in-flight LP solve aborts
// promptly when the surrounding context is cancelled.
func (s *simplex) iterate(c []float64) lpStatus {
	for {
		s.iter++
		if s.iter > iterCap {
			return lpIterLimit
		}
		if s.cancel != nil && s.iter%64 == 0 && s.cancel() {
			return lpIterLimit
		}
		bland := s.iter > blandCut
		q := s.chooseEntering(bland)
		if q < 0 {
			return lpOptimal
		}
		if st := s.pivotColumn(q, bland); st != lpOptimal {
			return st
		}
	}
}

// chooseEntering returns an improving nonbasic column, or -1 at optimality.
func (s *simplex) chooseEntering(bland bool) int {
	best, bestScore := -1, costTol
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == isBasic || s.lo[j] == s.hi[j] {
			continue
		}
		var score float64
		if s.status[j] == atLower && s.d[j] < -costTol {
			score = -s.d[j]
		} else if s.status[j] == atUpper && s.d[j] > costTol {
			score = s.d[j]
		} else {
			continue
		}
		if bland {
			return j // first eligible index
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// pivotColumn performs the ratio test and pivot for entering column q.
func (s *simplex) pivotColumn(q int, bland bool) lpStatus {
	// Direction of movement of x_q.
	t := 1.0
	if s.status[q] == atUpper {
		t = -1.0
	}
	// g_i = change rate of basic i per unit increase of the step Δ.
	deltaMax := math.Inf(1)
	if !math.IsInf(s.lo[q], 0) && !math.IsInf(s.hi[q], 0) {
		deltaMax = s.hi[q] - s.lo[q] // own bound flip distance
	}
	leave := -1 // row index of the leaving variable, -1 for bound flip
	leaveAt := atLower
	bestPiv := 0.0
	for i := 0; i < s.m; i++ {
		y := s.tab[i][q]
		if y > -pivTol && y < pivTol {
			continue
		}
		g := -t * y
		b := s.basis[i]
		var lim float64
		var hitsUpper bool
		if g > 0 {
			if math.IsInf(s.hi[b], 0) {
				continue
			}
			lim = (s.hi[b] - s.xB[i]) / g
			hitsUpper = true
		} else {
			if math.IsInf(s.lo[b], 0) {
				continue
			}
			lim = (s.lo[b] - s.xB[i]) / g
			hitsUpper = false
		}
		if lim < 0 {
			lim = 0
		}
		if lim < deltaMax-1e-12 ||
			(lim < deltaMax+1e-12 && leave >= 0 &&
				((bland && s.basis[i] < s.basis[leave]) || (!bland && math.Abs(y) > bestPiv))) {
			deltaMax = lim
			leave = i
			bestPiv = math.Abs(y)
			if hitsUpper {
				leaveAt = atUpper
			} else {
				leaveAt = atLower
			}
		}
	}
	if math.IsInf(deltaMax, 0) {
		return lpUnbounded
	}
	// Apply the step to all basic variables.
	if deltaMax != 0 {
		for i := 0; i < s.m; i++ {
			y := s.tab[i][q]
			if y != 0 {
				s.xB[i] += -t * y * deltaMax
			}
		}
	}
	if leave < 0 {
		// Bound flip: x_q jumps to its other bound; basis unchanged.
		if s.status[q] == atLower {
			s.status[q] = atUpper
			s.xval[q] = s.hi[q]
		} else {
			s.status[q] = atLower
			s.xval[q] = s.lo[q]
		}
		return lpOptimal
	}
	// Basis exchange: basis[leave] goes out to a bound, q comes in.
	out := s.basis[leave]
	s.status[out] = leaveAt
	if leaveAt == atLower {
		s.xval[out] = s.lo[out]
	} else {
		s.xval[out] = s.hi[out]
	}
	newVal := s.xval[q] + t*deltaMax
	s.basis[leave] = q
	s.status[q] = isBasic
	s.xB[leave] = newVal

	// Pivot the tableau on (leave, q).
	p := s.tab[leave][q]
	prow := s.tab[leave]
	inv := 1.0 / p
	for j := 0; j < s.nTotal; j++ {
		prow[j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := s.tab[i][q]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j < s.nTotal; j++ {
			if prow[j] != 0 {
				row[j] -= f * prow[j]
			}
		}
		row[q] = 0
	}
	f := s.d[q]
	if f != 0 {
		for j := 0; j < s.nTotal; j++ {
			if prow[j] != 0 {
				s.d[j] -= f * prow[j]
			}
		}
		s.d[q] = 0
	}
	return lpOptimal
}

// driveOutArtificials pivots basic artificial variables out of the basis
// where possible; rows where no structural pivot exists are redundant and
// keep their artificial basic at value zero forever.
func (s *simplex) driveOutArtificials() {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		// Find any non-artificial column to pivot in (degenerate pivot).
		piv := -1
		for j := 0; j < s.artStart; j++ {
			if s.status[j] != isBasic && math.Abs(s.tab[i][j]) > 1e-7 {
				piv = j
				break
			}
		}
		if piv < 0 {
			continue // redundant row
		}
		out := s.basis[i]
		s.status[out] = atLower
		s.xval[out] = 0
		s.basis[i] = piv
		// The entering variable keeps its current value (degenerate).
		enterVal := s.xval[piv]
		s.status[piv] = isBasic
		s.xB[i] = enterVal

		p := s.tab[i][piv]
		prow := s.tab[i]
		inv := 1.0 / p
		for j := 0; j < s.nTotal; j++ {
			prow[j] *= inv
		}
		for r := 0; r < s.m; r++ {
			if r == i {
				continue
			}
			f := s.tab[r][piv]
			if f == 0 {
				continue
			}
			row := s.tab[r]
			for j := 0; j < s.nTotal; j++ {
				if prow[j] != 0 {
					row[j] -= f * prow[j]
				}
			}
			row[piv] = 0
		}
	}
}
