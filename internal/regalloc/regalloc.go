// Package regalloc performs register allocation on a scheduled DDG — the
// last stage of the paper's Figure 1 pipeline. After the RS pass has
// guaranteed RS_t(G) ≤ R_t, any valid schedule allocates without spilling;
// this package makes that guarantee concrete and detects violations.
package regalloc

import (
	"fmt"
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/interference"
	"regsat/internal/schedule"
)

// Allocation is the result of allocating one register type.
type Allocation struct {
	Type ddg.RegType
	// Registers maps each value-defining node to its register index.
	Registers map[int]int
	// Used is the number of distinct registers used (= MAXLIVE of the
	// schedule, since lifetime intervals form an interval graph).
	Used int
}

// ErrNotEnoughRegisters reports an allocation that would need spill code.
type ErrNotEnoughRegisters struct {
	Type      ddg.RegType
	Need, Has int
}

func (e *ErrNotEnoughRegisters) Error() string {
	return fmt.Sprintf("regalloc: type %s needs %d registers, only %d available (spill required)",
		e.Type, e.Need, e.Has)
}

// Allocate assigns registers of type t to the values of the scheduled DDG.
// It fails with *ErrNotEnoughRegisters if the schedule's register need
// exceeds available.
func Allocate(s *schedule.Schedule, t ddg.RegType, available int) (*Allocation, error) {
	ig := interference.Build(s, t)
	col := ig.ColorLeftEdge()
	if col.NumColors > available {
		return nil, &ErrNotEnoughRegisters{Type: t, Need: col.NumColors, Has: available}
	}
	if !col.Verify(ig) {
		return nil, fmt.Errorf("regalloc: internal error: invalid coloring for type %s", t)
	}
	return &Allocation{Type: t, Registers: col.Assignment, Used: col.NumColors}, nil
}

// AllocateAll allocates every register type of the graph, given per-type
// register file sizes (types missing from the map are unlimited).
func AllocateAll(s *schedule.Schedule, files map[ddg.RegType]int) (map[ddg.RegType]*Allocation, error) {
	out := map[ddg.RegType]*Allocation{}
	for _, t := range s.G.Types() {
		available := int(^uint(0) >> 1)
		if r, ok := files[t]; ok {
			available = r
		}
		a, err := Allocate(s, t, available)
		if err != nil {
			return nil, err
		}
		out[t] = a
	}
	return out, nil
}

// Listing renders a readable register-annotated schedule listing, ordered by
// issue time, for examples and tools.
func Listing(s *schedule.Schedule, allocs map[ddg.RegType]*Allocation) string {
	type line struct {
		time int64
		text string
	}
	var lines []line
	for u := 0; u < s.G.NumNodes(); u++ {
		n := s.G.Node(u)
		if s.G.Bottom() == u {
			continue
		}
		text := fmt.Sprintf("t=%3d  %-8s %-6s", s.Times[u], n.Name, n.Op)
		for t, a := range allocs {
			if n.WritesType(t) {
				text += fmt.Sprintf("  -> %s:r%d", t, a.Registers[u])
			}
		}
		lines = append(lines, line{s.Times[u], text})
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].time < lines[j].time })
	out := ""
	for _, l := range lines {
		out += l.text + "\n"
	}
	return out
}
