package regalloc

import (
	"errors"
	"strings"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/schedule"
)

func buildScheduled(t *testing.T) (*ddg.Graph, *schedule.Schedule) {
	t.Helper()
	g := ddg.New("alloc", ddg.Superscalar)
	a := g.AddNode("a", "load", 2)
	b := g.AddNode("b", "load", 2)
	s1 := g.AddNode("s1", "fadd", 1)
	g.SetWrites(a, ddg.Float, 0)
	g.SetWrites(b, ddg.Float, 0)
	g.SetWrites(s1, ddg.Float, 0)
	g.AddFlowEdge(a, s1, ddg.Float)
	g.AddFlowEdge(b, s1, ddg.Float)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	sched, err := schedule.ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, sched
}

func TestAllocateSuccess(t *testing.T) {
	_, s := buildScheduled(t)
	a, err := Allocate(s, ddg.Float, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Used < 2 {
		t.Fatalf("used=%d, want ≥ 2 (a and b overlap)", a.Used)
	}
	if len(a.Registers) != 3 {
		t.Fatalf("assignments=%d, want 3", len(a.Registers))
	}
}

func TestAllocateSpillDetection(t *testing.T) {
	_, s := buildScheduled(t)
	_, err := Allocate(s, ddg.Float, 1)
	var spill *ErrNotEnoughRegisters
	if !errors.As(err, &spill) {
		t.Fatalf("err=%v, want ErrNotEnoughRegisters", err)
	}
	if spill.Need < 2 || spill.Has != 1 {
		t.Fatalf("spill report wrong: %v", spill)
	}
	if !strings.Contains(spill.Error(), "spill") {
		t.Fatal("error text should mention spilling")
	}
}

func TestAllocateAll(t *testing.T) {
	_, s := buildScheduled(t)
	allocs, err := AllocateAll(s, map[ddg.RegType]int{ddg.Float: 8})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[ddg.Float] == nil {
		t.Fatal("missing float allocation")
	}
}

func TestAllocateAllPropagatesSpill(t *testing.T) {
	_, s := buildScheduled(t)
	if _, err := AllocateAll(s, map[ddg.RegType]int{ddg.Float: 1}); err == nil {
		t.Fatal("expected spill error")
	}
}

func TestListing(t *testing.T) {
	g, s := buildScheduled(t)
	allocs, err := AllocateAll(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(s, allocs)
	for _, name := range []string{"a", "b", "s1"} {
		if !strings.Contains(out, name) {
			t.Fatalf("listing missing node %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "_bot") {
		t.Fatal("listing leaked ⊥")
	}
	_ = g
}
