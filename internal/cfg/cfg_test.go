package cfg

import (
	"context"
	"testing"

	"regsat/internal/ddg"
	"regsat/internal/rs"
)

// diamondCFG builds:
//
//	     entry (defines x, y)
//	    /                   \
//	left (uses x)        right (uses x, defines z)
//	    \                   /
//	     join (uses y, and z from right)
func diamondCFG(t *testing.T) (*CFG, *Block, *Block, *Block, *Block) {
	t.Helper()
	c := New("diamond", ddg.Superscalar)

	entry := c.AddBlock("entry")
	x := entry.Body.AddNode("defx", "load", 4)
	y := entry.Body.AddNode("defy", "load", 4)
	entry.Body.SetWrites(x, ddg.Float, 0)
	entry.Body.SetWrites(y, ddg.Float, 0)
	entry.Export(x, "x", ddg.Float)
	entry.Export(y, "y", ddg.Float)

	left := c.AddBlock("left")
	lu := left.Body.AddNode("usex", "fadd", 3)
	left.Body.SetWrites(lu, ddg.Float, 0)
	left.Import("x", lu)

	right := c.AddBlock("right")
	ru := right.Body.AddNode("usex2", "fmul", 4)
	right.Body.SetWrites(ru, ddg.Float, 0)
	right.Import("x", ru)
	right.Export(ru, "z", ddg.Float)

	join := c.AddBlock("join")
	ju := join.Body.AddNode("usey", "fadd", 3)
	jz := join.Body.AddNode("usez", "store", 1)
	join.Body.SetWrites(ju, ddg.Float, 0)
	join.Import("y", ju)
	join.Import("z", jz)

	c.AddEdge(entry, left)
	c.AddEdge(entry, right)
	c.AddEdge(left, join)
	c.AddEdge(right, join)
	return c, entry, left, right, join
}

func TestGlobalRSDiamond(t *testing.T) {
	c, _, _, _, _ := diamondCFG(t)
	res, err := c.GlobalRS(context.Background(), ddg.Float, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBlock) != 4 {
		t.Fatalf("blocks analyzed: %d, want 4", len(res.PerBlock))
	}
	// entry: x and y live out simultaneously → RS ≥ 2 there.
	if res.PerBlock["entry"].RS < 2 {
		t.Fatalf("entry RS=%d, want ≥ 2", res.PerBlock["entry"].RS)
	}
	// left: x live-in plus y live-through plus its local value.
	if res.PerBlock["left"].RS < 2 {
		t.Fatalf("left RS=%d, want ≥ 2 (x + live-through y)", res.PerBlock["left"].RS)
	}
	if res.Global < 2 {
		t.Fatalf("global RS=%d", res.Global)
	}
	if res.SafetyMargin != 0 {
		t.Fatalf("margin=%d, want 0 (single-def values)", res.SafetyMargin)
	}
	if res.EffectiveRS != res.Global {
		t.Fatal("effective RS mismatch")
	}
}

func TestLiveThroughOccupiesRegister(t *testing.T) {
	// y is defined in entry and used only in join: it must be live-through
	// left and right, raising their pressure by one.
	c, _, _, _, _ := diamondCFG(t)
	vals, err := c.resolve()
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveOut, err := c.liveness(vals)
	if err != nil {
		t.Fatal(err)
	}
	leftID := 1
	if !liveIn[leftID]["y"] || !liveOut[leftID]["y"] {
		t.Fatal("y must be live through left")
	}
	if !liveIn[leftID]["x"] {
		t.Fatal("x must be live into left")
	}
	if liveOut[leftID]["x"] {
		t.Fatal("x dies in left (its only downstream use is here)")
	}
}

func TestMergeValueSafetyMargin(t *testing.T) {
	// The same value name defined in two sibling blocks = a CFG merge: the
	// analysis must reserve the §6 extra register.
	c := New("merge", ddg.Superscalar)
	a := c.AddBlock("a")
	b1 := c.AddBlock("b1")
	b2 := c.AddBlock("b2")
	j := c.AddBlock("j")

	an := a.Body.AddNode("seed", "load", 4)
	a.Body.SetWrites(an, ddg.Float, 0)
	a.Export(an, "seed", ddg.Float)

	for _, blk := range []*Block{b1, b2} {
		n := blk.Body.AddNode("def_"+blk.Name, "fadd", 3)
		blk.Body.SetWrites(n, ddg.Float, 0)
		blk.Import("seed", n)
		blk.Export(n, "phi", ddg.Float) // both define "phi"
	}
	jn := j.Body.AddNode("use", "store", 1)
	j.Import("phi", jn)

	c.AddEdge(a, b1)
	c.AddEdge(a, b2)
	c.AddEdge(b1, j)
	c.AddEdge(b2, j)

	res, err := c.GlobalRS(context.Background(), ddg.Float, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SafetyMargin != 1 {
		t.Fatalf("margin=%d, want 1 for the merged value", res.SafetyMargin)
	}
	if res.EffectiveRS != res.Global+1 {
		t.Fatal("effective RS must include the margin")
	}
}

func TestCyclicCFGRejected(t *testing.T) {
	c := New("loop", ddg.Superscalar)
	a := c.AddBlock("a")
	b := c.AddBlock("b")
	n := a.Body.AddNode("n", "load", 1)
	a.Body.SetWrites(n, ddg.Float, 0)
	c.AddEdge(a, b)
	c.AddEdge(b, a)
	if _, err := c.GlobalRS(context.Background(), ddg.Float, rs.Options{Method: rs.MethodGreedy, SkipWitness: true}); err == nil {
		t.Fatal("cyclic CFG must be rejected (the paper excludes loops)")
	}
}

func TestImportUndefinedValueRejected(t *testing.T) {
	c := New("bad", ddg.Superscalar)
	a := c.AddBlock("a")
	n := a.Body.AddNode("n", "store", 1)
	a.Import("ghost", n)
	if _, err := c.GlobalRS(context.Background(), ddg.Float, rs.Options{Method: rs.MethodGreedy}); err == nil {
		t.Fatal("undefined import must be rejected")
	}
}

func TestGlobalReduceProtectsEntries(t *testing.T) {
	c, _, _, _, _ := diamondCFG(t)
	// Force reduction nearly everywhere with a budget of 1 (+margin 0).
	reductions, global, err := c.GlobalReduce(context.Background(), ddg.Float, 2, rs.Options{Method: rs.MethodExactBB, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if global.Global < 2 {
		t.Skip("nothing to reduce")
	}
	for name, red := range reductions {
		if red.Spill {
			continue
		}
		// No added arc may point into an entry node.
		var ab *AugmentedBlock
		for _, cand := range global.Blocks {
			if cand.Block.Name == name {
				ab = cand
			}
		}
		entries := map[int]bool{}
		for _, e := range ab.EntryNodes {
			entries[e] = true
		}
		for _, a := range red.Arcs {
			if entries[a.To] {
				t.Fatalf("block %s: arc into entry node %d", name, a.To)
			}
		}
	}
}

func TestAugmentedGraphsValidate(t *testing.T) {
	c, _, _, _, _ := diamondCFG(t)
	res, err := c.GlobalRS(context.Background(), ddg.Float, rs.Options{Method: rs.MethodGreedy, SkipWitness: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ab := range res.Blocks {
		if err := ab.Graph.Validate(); err != nil {
			t.Fatalf("block %s: %v", ab.Block.Name, err)
		}
		if !ab.Graph.Finalized() {
			t.Fatalf("block %s not finalized", ab.Block.Name)
		}
	}
}
