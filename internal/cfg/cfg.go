// Package cfg extends register saturation analysis from single DAGs to a
// global acyclic control flow graph, as sketched in the paper's Section 6
// ("In the case of a global scheduler"): the global RS of an acyclic CFG is
// brought back to RS on DAGs by inserting entry and exit values with
// corresponding flow arcs in every basic block, and the global analysis
// reserves one register of safety margin when a value has multiple reaching
// definitions (CFG merges can force one extra "move", §6).
//
// Loops are excluded, exactly as in the paper; back edges are rejected.
package cfg

import (
	"context"
	"fmt"
	"sort"

	"regsat/internal/ddg"
	"regsat/internal/graph"
	"regsat/internal/reduce"
	"regsat/internal/rs"
)

// Block is one basic block: a DDG under construction plus its inter-block
// value interface.
type Block struct {
	Name string
	// Body is the block's DDG (never finalized; the analysis clones it).
	Body *ddg.Graph

	id      int
	exports map[string]exportSpec // value name → defining node
	imports map[string][]int      // value name → consuming nodes
}

type exportSpec struct {
	node int
	typ  ddg.RegType
}

// CFG is an acyclic control flow graph of basic blocks.
type CFG struct {
	Name    string
	Machine ddg.MachineKind
	blocks  []*Block
	edges   [][2]int
}

// New creates an empty CFG.
func New(name string, machine ddg.MachineKind) *CFG {
	return &CFG{Name: name, Machine: machine}
}

// AddBlock appends a basic block and returns it. Operations are added
// directly on Block.Body (do not finalize it).
func (c *CFG) AddBlock(name string) *Block {
	b := &Block{
		Name:    name,
		Body:    ddg.New(name, c.Machine),
		id:      len(c.blocks),
		exports: map[string]exportSpec{},
		imports: map[string][]int{},
	}
	c.blocks = append(c.blocks, b)
	return b
}

// AddEdge adds a control flow edge between blocks.
func (c *CFG) AddEdge(from, to *Block) {
	c.edges = append(c.edges, [2]int{from.id, to.id})
}

// Blocks returns the block list.
func (c *CFG) Blocks() []*Block { return c.blocks }

// Export declares that node defines the named global value of type t (the
// node must write t). Other blocks may Import it.
func (b *Block) Export(node int, name string, t ddg.RegType) {
	if !b.Body.Node(node).WritesType(t) {
		panic(fmt.Sprintf("cfg: node %s does not write %s", b.Body.Node(node).Name, t))
	}
	b.exports[name] = exportSpec{node: node, typ: t}
}

// Import declares that the named value (exported elsewhere) is consumed by
// the given nodes of this block. With no consumers the value is only
// live-through candidates (liveness decides).
func (b *Block) Import(name string, consumers ...int) {
	b.imports[name] = append(b.imports[name], consumers...)
}

// valueInfo is the resolved interface of one global value.
type valueInfo struct {
	name  string
	typ   ddg.RegType
	defs  []int // defining block IDs (≥ 2 means a CFG merge)
	useIn map[int][]int
}

// resolve collects and checks the global value interface.
func (c *CFG) resolve() (map[string]*valueInfo, error) {
	vals := map[string]*valueInfo{}
	for _, b := range c.blocks {
		for name, spec := range b.exports {
			v := vals[name]
			if v == nil {
				v = &valueInfo{name: name, typ: spec.typ, useIn: map[int][]int{}}
				vals[name] = v
			} else if v.typ != spec.typ {
				return nil, fmt.Errorf("cfg: value %s exported with types %s and %s", name, v.typ, spec.typ)
			}
			v.defs = append(v.defs, b.id)
		}
	}
	for _, b := range c.blocks {
		for name, consumers := range b.imports {
			v := vals[name]
			if v == nil {
				return nil, fmt.Errorf("cfg: block %s imports undefined value %s", b.Name, name)
			}
			v.useIn[b.id] = append(v.useIn[b.id], consumers...)
		}
	}
	return vals, nil
}

// topoOrder returns a topological order of the blocks, rejecting cycles
// (the paper's global analysis excludes loops).
func (c *CFG) topoOrder() ([]int, error) {
	dg := graph.New(len(c.blocks))
	for _, e := range c.edges {
		dg.AddEdge(e[0], e[1], 1)
	}
	order, err := dg.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("cfg %s: control flow must be acyclic: %w", c.Name, err)
	}
	return order, nil
}

// liveness computes per-block live-in/live-out value-name sets with the
// standard backward dataflow over the acyclic CFG.
func (c *CFG) liveness(vals map[string]*valueInfo) (liveIn, liveOut []map[string]bool, err error) {
	order, err := c.topoOrder()
	if err != nil {
		return nil, nil, err
	}
	succ := make([][]int, len(c.blocks))
	for _, e := range c.edges {
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	use := make([]map[string]bool, len(c.blocks))
	def := make([]map[string]bool, len(c.blocks))
	for i, b := range c.blocks {
		use[i] = map[string]bool{}
		def[i] = map[string]bool{}
		for name := range b.imports {
			use[i][name] = true
		}
		for name := range b.exports {
			def[i][name] = true
		}
	}
	liveIn = make([]map[string]bool, len(c.blocks))
	liveOut = make([]map[string]bool, len(c.blocks))
	for i := range c.blocks {
		liveIn[i] = map[string]bool{}
		liveOut[i] = map[string]bool{}
	}
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		for _, s := range succ[b] {
			for name := range liveIn[s] {
				liveOut[b][name] = true
			}
		}
		for name := range liveOut[b] {
			if !def[b][name] {
				liveIn[b][name] = true
			}
		}
		for name := range use[b] {
			if !def[b][name] { // upward-exposed use: defined upstream
				liveIn[b][name] = true
			}
		}
	}
	_ = vals
	return liveIn, liveOut, nil
}

// AugmentedBlock is one block's analysis-ready DAG: the body plus entry
// nodes for live-in values and exit consumption for live-out values.
type AugmentedBlock struct {
	Block *Block
	Graph *ddg.Graph
	// EntryNodes maps a live-in value name to its virtual entry node.
	EntryNodes map[string]int
	// ExitNode consumes the live-out values (-1 when the block has none).
	ExitNode int
}

// Augment builds the analysis DAG of one block: a clone of the body with
// one entry node per live-in value (flow edges to its local consumers, or
// only to ⊥ for live-through values) and one exit node consuming every
// live-out value, then finalized.
func (c *CFG) Augment(b *Block, vals map[string]*valueInfo, liveIn, liveOut map[string]bool) (*AugmentedBlock, error) {
	g := b.Body.Clone()
	g.Name = fmt.Sprintf("%s.%s", c.Name, b.Name)
	ab := &AugmentedBlock{Block: b, Graph: g, EntryNodes: map[string]int{}, ExitNode: -1}

	names := make([]string, 0, len(liveIn))
	for name := range liveIn {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := vals[name]
		entry := g.AddNode("entry."+name, "entry", 1)
		g.SetWrites(entry, v.typ, 0)
		ab.EntryNodes[name] = entry
		for _, consumer := range b.imports[name] {
			g.AddFlowEdge(entry, consumer, v.typ)
		}
		// Live-through: re-exported downstream ⇒ must also survive the
		// block; route it to the exit below.
	}

	// Exit node: consumes every live-out value so its lifetime spans to
	// the block end under a saturating schedule.
	var outNames []string
	for name := range liveOut {
		outNames = append(outNames, name)
	}
	sort.Strings(outNames)
	var exitDeps []struct {
		node int
		typ  ddg.RegType
	}
	for _, name := range outNames {
		v := vals[name]
		if spec, ok := b.exports[name]; ok {
			exitDeps = append(exitDeps, struct {
				node int
				typ  ddg.RegType
			}{spec.node, v.typ})
		} else if entry, ok := ab.EntryNodes[name]; ok {
			// Live-through value: entry → exit.
			exitDeps = append(exitDeps, struct {
				node int
				typ  ddg.RegType
			}{entry, v.typ})
		}
	}
	if len(exitDeps) > 0 {
		exit := g.AddNode("exit."+b.Name, "exit", 1)
		ab.ExitNode = exit
		for _, d := range exitDeps {
			g.AddFlowEdge(d.node, exit, d.typ)
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	return ab, nil
}

// GlobalRSResult is the outcome of a global register saturation analysis.
type GlobalRSResult struct {
	Type ddg.RegType
	// PerBlock maps block names to their (augmented) saturation.
	PerBlock map[string]*rs.Result
	// Blocks holds the augmented DAGs for further processing.
	Blocks []*AugmentedBlock
	// Global is the maximum per-block saturation.
	Global int
	// SafetyMargin is 1 when some value has several reaching definitions
	// (a CFG merge): §6 argues global allocation may then need one extra
	// register for a move, so budgets should be decremented accordingly.
	SafetyMargin int
	// EffectiveRS = Global + SafetyMargin: compare this to the register
	// file size.
	EffectiveRS int
}

// GlobalRS computes the global register saturation of the CFG for type t.
func (c *CFG) GlobalRS(ctx context.Context, t ddg.RegType, opts rs.Options) (*GlobalRSResult, error) {
	vals, err := c.resolve()
	if err != nil {
		return nil, err
	}
	liveIn, liveOut, err := c.liveness(vals)
	if err != nil {
		return nil, err
	}
	res := &GlobalRSResult{Type: t, PerBlock: map[string]*rs.Result{}}
	for name, v := range vals {
		if len(v.defs) > 1 {
			res.SafetyMargin = 1
			_ = name
		}
	}
	for i, b := range c.blocks {
		ab, err := c.Augment(b, vals, liveIn[i], liveOut[i])
		if err != nil {
			return nil, err
		}
		res.Blocks = append(res.Blocks, ab)
		r, err := rs.Compute(ctx, ab.Graph, t, opts)
		if err != nil {
			return nil, err
		}
		res.PerBlock[b.Name] = r
		if r.RS > res.Global {
			res.Global = r.RS
		}
	}
	res.EffectiveRS = res.Global + res.SafetyMargin
	return res, nil
}

// GlobalReduce reduces every block whose saturation exceeds the budget
// (minus the merge safety margin), protecting entry values from
// serialization arcs that would delay their pinned births. It returns the
// per-block reductions; spill is reported per block.
func (c *CFG) GlobalReduce(ctx context.Context, t ddg.RegType, available int, opts rs.Options) (map[string]*reduce.Result, *GlobalRSResult, error) {
	global, err := c.GlobalRS(ctx, t, opts)
	if err != nil {
		return nil, nil, err
	}
	budget := available - global.SafetyMargin
	out := map[string]*reduce.Result{}
	for _, ab := range global.Blocks {
		r := global.PerBlock[ab.Block.Name]
		if r.RS <= budget {
			continue
		}
		entries := map[int]bool{}
		for _, e := range ab.EntryNodes {
			entries[e] = true
		}
		red, err := reduce.HeuristicFiltered(ctx, ab.Graph, t, budget, func(u, v int) bool {
			return !entries[v] // never delay an entry value's birth
		})
		if err != nil {
			return nil, nil, err
		}
		out[ab.Block.Name] = red
	}
	return out, global, nil
}
