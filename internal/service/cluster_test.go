package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"regsat/client"
	"regsat/internal/gen"
	"regsat/internal/ir"
	"regsat/internal/service/store"
)

// testCluster is an in-process fleet of n replicas with shared membership.
type testCluster struct {
	urls    []string
	servers []*Server
	https   []*httptest.Server
}

// startTestCluster boots n replicas. Peer URLs must be known before any
// Server exists, so listeners are created first and each httptest server is
// started on its pre-allocated listener. mutate (optional) adjusts each
// replica's Config before New.
func startTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		cfg := Config{Peers: tc.urls, Self: tc.urls[i]}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewUnstartedServer(s.Handler())
		hs.Listener.Close()
		hs.Listener = listeners[i]
		hs.Start()
		tc.servers = append(tc.servers, s)
		tc.https = append(tc.https, hs)
	}
	t.Cleanup(func() {
		for _, hs := range tc.https {
			hs.Close()
		}
	})
	return tc
}

// testCorpus generates count structurally distinct graphs and returns their
// wire inputs (fingerprint included) plus the fingerprints.
func testCorpus(t *testing.T, count int) ([]client.GraphInput, []string) {
	t.Helper()
	fam := gen.Families()[0]
	inputs := make([]client.GraphInput, count)
	fps := make([]string, count)
	for i := 0; i < count; i++ {
		p := fam.Defaults
		p.Seed = int64(1000 + i)
		g, err := fam.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = ir.Fingerprint(g)
		inputs[i] = client.GraphInput{Name: fmt.Sprintf("g%d", i), DDG: g.Format(), Fingerprint: fps[i]}
	}
	return inputs, fps
}

// TestClusterForwardsToOwners: a batch sent to one replica comes back
// complete and correct, with non-owned items forwarded — the coordinator
// records sends, some peer records receives, and every item lands at a
// replica that owns it (zero remote items fleet-wide).
func TestClusterForwardsToOwners(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	inputs, fps := testCorpus(t, 12)

	c := client.New(tc.urls[0], nil)
	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs:  inputs,
		Options: client.AnalyzeOptions{Method: "greedy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("batch error: %s", resp.Error)
	}
	if len(resp.Items) != len(inputs) {
		t.Fatalf("got %d items, want %d", len(resp.Items), len(inputs))
	}
	for i, it := range resp.Items {
		if it.Error != "" {
			t.Fatalf("item %s failed: %s", it.Name, it.Error)
		}
		if it.Index != i || it.Name != inputs[i].Name {
			t.Fatalf("item %d out of order: index=%d name=%s", i, it.Index, it.Name)
		}
		if len(it.RS) == 0 {
			t.Fatalf("item %s has no RS results", it.Name)
		}
	}

	coord := tc.servers[0].cluster
	if coord.forwardsSent.Load() == 0 {
		t.Fatal("coordinator forwarded nothing; 12 distinct graphs across 3 replicas should shard")
	}
	var received, local, remote int64
	for _, s := range tc.servers {
		received += s.cluster.forwardsReceived.Load()
		local += s.cluster.localItems.Load()
		remote += s.cluster.remoteItems.Load()
	}
	if received == 0 {
		t.Fatal("no replica recorded a received forward")
	}
	if remote != 0 {
		t.Fatalf("%d items served off-owner in a healthy fleet", remote)
	}
	if local != int64(len(inputs)) {
		t.Fatalf("fleet served %d items locally, want %d", local, len(inputs))
	}

	// Ownership sanity: every fingerprint's owner is one of the members.
	ring := client.NewRing(tc.urls, 0)
	for _, fp := range fps {
		if owner := ring.Owner(fp); !ring.Contains(owner) {
			t.Fatalf("fingerprint %s owned by non-member %q", fp, owner)
		}
	}
}

// TestForwardGuardPreventsLoops: a request already carrying the forward
// guard is served entirely locally — even for items the receiver does not
// own — so a forwarded request can never trigger another hop.
func TestForwardGuardPreventsLoops(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	inputs, _ := testCorpus(t, 9)

	// Stamp the guard as if some other replica forwarded the whole batch.
	hdr := http.Header{}
	hdr.Set(forwardHeader, "http://nowhere.invalid")
	guarded := client.NewWithOptions(tc.urls[1], client.Options{Header: hdr})
	resp, err := guarded.Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs:  inputs,
		Options: client.AnalyzeOptions{Method: "greedy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != len(inputs) {
		t.Fatalf("guarded request returned %d items, want %d", len(resp.Items), len(inputs))
	}
	for _, it := range resp.Items {
		if it.Error != "" {
			t.Fatalf("item %s failed: %s", it.Name, it.Error)
		}
	}
	for i, s := range tc.servers {
		if sent := s.cluster.forwardsSent.Load(); sent != 0 {
			t.Fatalf("replica %d re-forwarded a guarded request %d times (loop!)", i, sent)
		}
	}
	recv := tc.servers[1].cluster
	if recv.forwardsReceived.Load() != 1 {
		t.Fatalf("receiver counted %d received forwards, want 1", recv.forwardsReceived.Load())
	}
	// 9 distinct graphs on a 3-replica ring: the receiver cannot own all of
	// them, so serving the guarded batch locally must count remote items.
	if recv.remoteItems.Load() == 0 {
		t.Fatal("receiver owned every item of the guarded batch; corpus too small to exercise the guard")
	}
}

// TestClusterAffinityIsShardLocal: a client that routes by fingerprint
// sends every item straight to its owner — no forwards at all, and the
// second pass is served from the owners' warm caches.
func TestClusterAffinityIsShardLocal(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	inputs, _ := testCorpus(t, 10)

	cl, err := client.NewCluster(tc.urls, client.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		for _, in := range inputs {
			resp, err := cl.Analyze(context.Background(), &client.AnalyzeRequest{
				Graphs:  []client.GraphInput{in},
				Options: client.AnalyzeOptions{Method: "greedy"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Items[0].Error != "" {
				t.Fatalf("%s: %s", in.Name, resp.Items[0].Error)
			}
		}
	}
	run()
	var sent, local, remote int64
	for _, s := range tc.servers {
		sent += s.cluster.forwardsSent.Load()
		local += s.cluster.localItems.Load()
		remote += s.cluster.remoteItems.Load()
	}
	if sent != 0 {
		t.Fatalf("affinity routing still caused %d forwards", sent)
	}
	if remote != 0 || local != int64(len(inputs)) {
		t.Fatalf("shard locality broken: local=%d remote=%d want local=%d remote=0", local, remote, len(inputs))
	}

	// Second pass: same items, warm caches — every request is a cache hit
	// at its owner.
	var hits int64
	for _, in := range inputs {
		resp, err := cl.Analyze(context.Background(), &client.AnalyzeRequest{
			Graphs:  []client.GraphInput{in},
			Options: client.AnalyzeOptions{Method: "greedy"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Items[0].CacheHit {
			hits++
		}
	}
	if hits != int64(len(inputs)) {
		t.Fatalf("second pass hit caches on %d/%d items, want all", hits, len(inputs))
	}
}

// TestRingEndpoint: /v1/ring reports the topology a client needs to build
// the identical ring; single-process daemons report disabled.
func TestRingEndpoint(t *testing.T) {
	tc := startTestCluster(t, 3, func(_ int, cfg *Config) { cfg.VNodes = 32 })
	info, err := client.New(tc.urls[2], nil).Ring(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || info.VNodes != 32 || len(info.Members) != 3 {
		t.Fatalf("ring info wrong: %+v", info)
	}
	if info.Self != client.NormalizeMember(tc.urls[2]) {
		t.Fatalf("Self = %q, want %q", info.Self, tc.urls[2])
	}

	_, c, done := newTestServer(t, Config{})
	defer done()
	solo, err := c.Ring(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if solo.Enabled || len(solo.Members) != 0 {
		t.Fatalf("single-process daemon claims a cluster: %+v", solo)
	}
}

// TestClusterMetricsExposition: the per-replica Prometheus exposition
// carries the cluster counters, visible through client.Metrics.
func TestClusterMetricsExposition(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	inputs, _ := testCorpus(t, 6)
	if _, err := client.New(tc.urls[0], nil).Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs:  inputs,
		Options: client.AnalyzeOptions{Method: "greedy"},
	}); err != nil {
		t.Fatal(err)
	}
	body, err := client.New(tc.urls[0], nil).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"regsat_cluster_members 3",
		"regsat_cluster_vnodes",
		"regsat_cluster_forwards_sent_total",
		"regsat_cluster_forwards_received_total",
		"regsat_cluster_forwards_failed_total",
		"regsat_cluster_local_items_total",
		"regsat_cluster_remote_items_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics exposition missing %q", metric)
		}
	}

	// Single-process daemons must not expose cluster series at all.
	_, c, done := newTestServer(t, Config{})
	defer done()
	solo, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(solo, "regsat_cluster_") {
		t.Error("single-process daemon exposes cluster metrics")
	}
}

// TestClusterSurvivesReplicaDeathMidStream is the availability acceptance
// test: three replicas, a cluster client driving a batch of requests, one
// replica killed partway through. The batch must complete with zero errors
// — forward fallback on the coordinators, failover in the client — and the
// client must record at least one failover.
func TestClusterSurvivesReplicaDeathMidStream(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	inputs, fps := testCorpus(t, 18)

	cl, err := client.NewCluster(tc.urls, client.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the replica owning the most items, right after the first third
	// of the batch — requests routed to it afterwards must fail over.
	ring := cl.Ring()
	ownedBy := map[string]int{}
	for _, fp := range fps {
		ownedBy[ring.Owner(fp)]++
	}
	victim, most := "", -1
	for m, n := range ownedBy {
		if n > most {
			victim, most = m, n
		}
	}
	victimIdx := -1
	for i, u := range tc.urls {
		if client.NormalizeMember(u) == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		t.Fatalf("victim %q not in fleet", victim)
	}

	var errCount, done int
	for i, in := range inputs {
		if i == len(inputs)/3 {
			tc.https[victimIdx].Close()
		}
		resp, err := cl.Analyze(context.Background(), &client.AnalyzeRequest{
			Graphs:  []client.GraphInput{in},
			Options: client.AnalyzeOptions{Method: "greedy"},
		})
		if err != nil {
			errCount++
			t.Errorf("request %s failed: %v", in.Name, err)
			continue
		}
		if resp.Items[0].Error != "" {
			errCount++
			t.Errorf("item %s failed: %s", in.Name, resp.Items[0].Error)
			continue
		}
		done++
	}
	if errCount != 0 {
		t.Fatalf("%d/%d requests failed across the replica death", errCount, len(inputs))
	}
	if done != len(inputs) {
		t.Fatalf("only %d/%d requests completed", done, len(inputs))
	}
	if cl.Stats().Failovers < 1 {
		t.Fatalf("no failover recorded despite killing the owner of %d/%d items", most, len(inputs))
	}
}

// TestTwoDaemonsOneStoreDir: two independent daemons (separate engines,
// separate admission, separate Store handles) sharing one store directory
// must tolerate concurrent write-through — the atomic tmp+rename protocol
// means readers never observe a torn result — and afterwards a fresh
// daemon serves the whole corpus from the shared store without computing
// anything.
func TestTwoDaemonsOneStoreDir(t *testing.T) {
	dir := t.TempDir()
	inputs, _ := testCorpus(t, 8)
	req := func() *client.AnalyzeRequest {
		return &client.AnalyzeRequest{Graphs: inputs, Options: client.AnalyzeOptions{Method: "bb"}}
	}

	open := func() *store.Store {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	_, c1, done1 := newTestServer(t, Config{Store: open()})
	defer done1()
	_, c2, done2 := newTestServer(t, Config{Store: open()})
	defer done2()

	// Both daemons analyze the same fresh corpus at the same time: every
	// result is written through to the same files from two processes' worth
	// of workers.
	var wg sync.WaitGroup
	responses := make([]*client.AnalyzeResponse, 2)
	for i, c := range []*client.Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			resp, err := c.Analyze(ctx, req())
			if err != nil {
				t.Errorf("daemon %d: %v", i, err)
				return
			}
			responses[i] = resp
		}(i, c)
	}
	wg.Wait()
	for i, resp := range responses {
		if resp == nil {
			t.Fatalf("daemon %d returned nothing", i)
		}
		for _, it := range resp.Items {
			if it.Error != "" {
				t.Fatalf("daemon %d: item %s: %s", i, it.Name, it.Error)
			}
		}
	}
	// Identical inputs must yield identical RS values regardless of which
	// daemon (or whose store write) served them.
	for j := range responses[0].Items {
		a, b := responses[0].Items[j], responses[1].Items[j]
		for typ, ra := range a.RS {
			rb := b.RS[typ]
			if rb == nil || ra.RS != rb.RS {
				t.Fatalf("item %s type %s: daemons disagree (%+v vs %+v)", a.Name, typ, ra, rb)
			}
		}
	}

	// A third daemon on the same directory serves everything from L2.
	_, c3, done3 := newTestServer(t, Config{Store: open()})
	defer done3()
	resp, err := c3.Analyze(context.Background(), req())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Computed != 0 {
		t.Fatalf("fresh daemon recomputed %d results; the shared store should hold them all", resp.Stats.Computed)
	}
	for _, it := range resp.Items {
		if it.Error != "" {
			t.Fatalf("fresh daemon: item %s: %s", it.Name, it.Error)
		}
	}
}

// TestClusterConfigValidation: inconsistent cluster configs fail at New,
// not at first request.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a:1"}}); err == nil {
		t.Error("Peers without Self accepted")
	}
	if _, err := New(Config{Peers: []string{"http://a:1"}, Self: "http://b:2"}); err == nil {
		t.Error("Self outside Peers accepted")
	}
	if _, err := New(Config{Self: "http://a:1"}); err == nil {
		t.Error("Self without Peers accepted")
	}
	if _, err := New(Config{Peers: []string{"http://a:1/", "http://b:2"}, Self: "http://a:1"}); err != nil {
		t.Errorf("valid cluster config rejected: %v", err)
	}
}

// TestClusterTraceStitching: a traced request to one replica produces ONE
// trace whose exported spans come from at least two replicas — the
// coordinator's server/forward spans plus the owning replicas' server and
// batch spans, stitched via traceparent propagation on the forward hop and
// the inline span attachments on the way back.
func TestClusterTraceStitching(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	inputs, _ := testCorpus(t, 12)

	c := client.New(tc.urls[0], nil)
	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs:  inputs,
		Options: client.AnalyzeOptions{Method: "greedy"},
		Trace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("batch error: %s", resp.Error)
	}
	if resp.RequestID == "" {
		t.Error("traced response missing requestId echo")
	}
	if resp.TraceID == "" {
		t.Fatal("traced response missing traceId")
	}

	spans, err := c.Trace(context.Background(), resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("coordinator exported no spans for the trace")
	}

	services := map[string]bool{}
	names := map[string]int{}
	byID := map[string]client.TraceSpan{}
	for _, sp := range spans {
		if sp.TraceID != resp.TraceID {
			t.Fatalf("span %s/%s carries trace %s, want %s (one request = one trace)",
				sp.Service, sp.Name, sp.TraceID, resp.TraceID)
		}
		services[sp.Service] = true
		names[sp.Name]++
		byID[sp.SpanID] = sp
	}
	if len(services) < 2 {
		t.Fatalf("trace has spans from %d replica(s) (%v); forwarding must stitch at least 2",
			len(services), services)
	}
	for _, want := range []string{"server.analyze", "cluster.forward", "batch.item"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}
	// The remote server.analyze span must hang off the coordinator's
	// cluster.forward span: parent stitching, not just a shared ID.
	stitched := false
	for _, sp := range spans {
		if sp.Name != "server.analyze" || sp.Service == tc.urls[0] {
			continue
		}
		if parent, ok := byID[sp.Parent]; ok && parent.Name == "cluster.forward" && parent.Service == tc.urls[0] {
			stitched = true
		}
	}
	if !stitched {
		t.Errorf("no remote server.analyze span parented under the coordinator's cluster.forward span")
	}
}
