package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"regsat/client"
	"regsat/internal/batch"
	"regsat/internal/obs"
)

// forwardHeader is the single-hop forwarding guard. A replica forwarding
// items to their ring owner stamps it with its own identity; a replica
// receiving a request carrying it serves every item locally and NEVER
// forwards again. Forwarding is therefore loop-free by construction: a
// request crosses at most one replica-to-replica hop, even when replicas
// disagree about membership (rolling restarts, skewed -peers flags).
const forwardHeader = "X-Regsat-Forwarded"

// cluster is the daemon's fleet membership: the consistent-hash ring over
// the configured peers and one guard-stamped client per peer. All fields
// are set once in newCluster; the counters are the only mutable state.
type cluster struct {
	self  string // this replica's normalized member identity
	ring  *client.Ring
	peers map[string]*client.Client // member -> client, excluding self

	// forwardsSent/Failed count peer-bound forward requests (one per peer
	// per analyze call, not per item); forwardsReceived counts guard-stamped
	// requests served. localItems/remoteItems count analyzed items by
	// whether this replica owns them on the ring — the fleet-wide ratio is
	// the shard-local hit rate.
	forwardsSent     atomic.Int64
	forwardsReceived atomic.Int64
	forwardsFailed   atomic.Int64
	localItems       atomic.Int64
	remoteItems      atomic.Int64
}

// newCluster validates the cluster configuration and builds the membership.
// No Peers means single-process mode (nil cluster, nil error).
func newCluster(cfg Config) (*cluster, error) {
	if len(cfg.Peers) == 0 {
		if client.NormalizeMember(cfg.Self) != "" {
			return nil, errors.New("service: Self is set but Peers is empty (a cluster needs the full member list, including this replica)")
		}
		return nil, nil
	}
	self := client.NormalizeMember(cfg.Self)
	if self == "" {
		return nil, errors.New("service: Peers is set but Self is empty (every replica must know its own member identity)")
	}
	ring := client.NewRing(cfg.Peers, cfg.VNodes)
	if !ring.Contains(self) {
		return nil, fmt.Errorf("service: Self %q is not in Peers %v (the member list must include this replica)", self, ring.Members())
	}
	c := &cluster{self: self, ring: ring, peers: map[string]*client.Client{}}
	hdr := http.Header{}
	hdr.Set(forwardHeader, self)
	for _, m := range ring.Members() {
		if m == self {
			continue
		}
		// Forwards retry 429s briefly (the owner's queue may drain), then
		// the coordinator falls back to computing locally.
		c.peers[m] = client.NewWithOptions(m, client.Options{
			Header:  hdr,
			Backoff: &client.Backoff{Attempts: 2},
		})
	}
	return c, nil
}

// countItem records one served item's shard locality.
func (c *cluster) countItem(fp string) {
	if c.ring.Owner(fp) == c.self {
		c.localItems.Add(1)
	} else {
		c.remoteItems.Add(1)
	}
}

// handleRing serves /v1/ring: the daemon's cluster topology. A client that
// builds client.NewRing(Members, VNodes) from this body owns exactly the
// fleet's ownership map.
func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	info := client.RingInfo{}
	if s.cluster != nil {
		info = client.RingInfo{
			Enabled: true,
			Self:    s.cluster.self,
			Members: s.cluster.ring.Members(),
			VNodes:  s.cluster.ring.VNodes(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// serveClustered is the coordinator path of POST /v1/analyze: it partitions
// the request's items by ring ownership, serves owned items on the local
// engine, forwards the rest (batched per owner) to their replicas, and
// answers with the merged, input-ordered results. Streaming requests are
// collected first and then emitted in order — ownership partitioning and
// NDJSON-as-completed do not compose across replicas.
func (s *Server) serveClustered(ctx context.Context, w http.ResponseWriter, r *http.Request,
	req *client.AnalyzeRequest, engine *batch.Engine, before batch.Stats, src batch.Source) {
	items, stats := s.clusterAnalyze(ctx, engine, before, req, src)

	root := obs.FromContext(ctx)
	var interrupted string
	if err := ctx.Err(); err != nil {
		interrupted = fmt.Sprintf("batch interrupted: %v", err)
		s.log(ctx).Warn("clustered analyze interrupted", "err", err)
	}

	if r.URL.Query().Get("stream") != "" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		emit := func(ev client.StreamEvent) {
			enc.Encode(ev)
			if flusher != nil {
				flusher.Flush()
			}
		}
		for _, it := range items {
			if it != nil {
				emit(client.StreamEvent{Item: it})
			}
		}
		if interrupted != "" {
			emit(client.StreamEvent{Error: interrupted})
		}
		emit(client.StreamEvent{Stats: &stats, TraceID: string(root.TraceID())})
		return
	}

	resp := client.AnalyzeResponse{
		Items:     []client.Item{},
		Stats:     stats,
		Error:     interrupted,
		RequestID: obs.RequestIDFromContext(ctx),
	}
	for _, it := range items {
		if it != nil {
			resp.Items = append(resp.Items, *it)
		}
	}
	s.attachTrace(&resp, root, req.TraceSpans)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// partition is one replica's slice of a clustered request: the items it
// will serve and their positions in the original input stream.
type partition struct {
	indices []int
	items   []batch.Item
	fps     []string
}

func (p *partition) add(idx int, it batch.Item, fp string) {
	p.indices = append(p.indices, idx)
	p.items = append(p.items, it)
	p.fps = append(p.fps, fp)
}

// clusterAnalyze runs the ownership-partitioned batch. The returned slice
// is indexed by input position; interrupted batches leave nil holes. Stats
// aggregate the local engine's cache movement plus every forwarded
// partition's reported stats.
func (s *Server) clusterAnalyze(ctx context.Context, engine *batch.Engine, before batch.Stats,
	req *client.AnalyzeRequest, src batch.Source) ([]*client.Item, client.RunStats) {
	// Ownership is per item, so the coordinator drains the source up front
	// (sources are lazy only for the benefit of the streaming path, which
	// cluster mode collects anyway).
	var all []batch.Item
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		all = append(all, it)
	}

	local := &partition{}
	remote := map[string]*partition{}
	for i, it := range all {
		if it.Err == nil && (it.Graph != nil || it.Loop != nil) {
			var fp string
			if it.Loop != nil {
				fp = it.Loop.Fingerprint()
			} else {
				fp = batch.Fingerprint(it.Graph)
			}
			if owner := s.cluster.ring.Owner(fp); owner != "" && owner != s.cluster.self {
				p := remote[owner]
				if p == nil {
					p = &partition{}
					remote[owner] = p
				}
				p.add(i, it, fp)
				continue
			}
			local.add(i, it, fp)
			continue
		}
		// Load errors have no fingerprint to own; they stay local.
		local.add(i, it, "")
	}

	out := make([]*client.Item, len(all))
	withWitness := req.Options.Witness
	wantDDG := req.Options.Reduce != nil

	// runLocal serves one partition on this replica's engine, writing each
	// result at its original input position (goroutines write disjoint
	// positions, so the slice needs no lock).
	runLocal := func(p *partition) {
		if len(p.items) == 0 {
			return
		}
		ch, err := engine.Run(ctx, batch.Items(p.items...))
		if err != nil {
			for k, idx := range p.indices {
				out[idx] = &client.Item{Index: idx, Name: p.items[k].Name, Error: err.Error()}
			}
			return
		}
		for res := range ch {
			idx := p.indices[res.Index]
			res.Index = idx
			item := s.itemToWire(res, withWitness, wantDDG)
			out[idx] = &item
		}
	}

	var timeoutMs int64
	if dl, ok := ctx.Deadline(); ok {
		timeoutMs = time.Until(dl).Milliseconds()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runLocal(local)
	}()

	var statsMu sync.Mutex
	var forwarded client.RunStats
	for owner, p := range remote {
		wg.Add(1)
		go func(owner string, p *partition) {
			defer wg.Done()
			fr := &client.AnalyzeRequest{
				Graphs:    make([]client.GraphInput, len(p.items)),
				Options:   req.Options,
				TimeoutMs: timeoutMs,
			}
			for k, it := range p.items {
				text := ""
				if it.Loop != nil {
					text = it.Loop.Format()
				} else {
					text = it.Graph.Format()
				}
				fr.Graphs[k] = client.GraphInput{Name: it.Name, DDG: text, Fingerprint: p.fps[k]}
			}
			// The forward span covers the whole hop; the peer client injects
			// its traceparent on the outgoing request, so the owning replica
			// joins this trace and its server/batch/solver spans stitch under
			// the same trace ID. The inline span attachment (TraceSpans) is
			// how they travel back.
			fctx, fsp := obs.StartSpan(ctx, "cluster.forward",
				obs.Str("peer", owner), obs.Int("items", int64(len(p.items))))
			if fsp != nil {
				fr.TraceSpans = true
			}
			s.cluster.forwardsSent.Add(1)
			resp, err := s.cluster.peers[owner].Analyze(fctx, fr)
			if err != nil {
				// Availability over shard purity: an unreachable owner's
				// items are computed here (and counted remote).
				s.cluster.forwardsFailed.Add(1)
				fsp.Event("forward.failed", obs.Str("err", err.Error()))
				fsp.End()
				s.log(ctx).Warn("forward failed, computing locally",
					"peer", owner, "items", len(p.items), "err", err)
				runLocal(p)
				return
			}
			fsp.End()
			s.tracer.AddSpans(wireToSpans(resp.Spans))
			for _, item := range resp.Items {
				if item.Index < 0 || item.Index >= len(p.indices) {
					continue // a malformed peer answer must not corrupt other positions
				}
				idx := p.indices[item.Index]
				it := item
				it.Index = idx
				out[idx] = &it
			}
			statsMu.Lock()
			forwarded.L1Hits += resp.Stats.L1Hits
			forwarded.L2Hits += resp.Stats.L2Hits
			forwarded.Computed += resp.Stats.Computed
			statsMu.Unlock()
		}(owner, p)
	}
	wg.Wait()

	stats := runStatsSince(engine, before)
	stats.L1Hits += forwarded.L1Hits
	stats.L2Hits += forwarded.L2Hits
	stats.Computed += forwarded.Computed
	return out, stats
}
