package service

import (
	"context"
	"errors"
	"sync"
)

// errOverloaded is returned by admission.acquire when the wait queue is
// full; the handler maps it to HTTP 429.
var errOverloaded = errors.New("service: admission queue full")

// admission is the daemon's bounded job queue: at most maxInFlight requests
// execute at once, at most maxQueue more wait for a slot, and anything
// beyond that is shed immediately. The bound is what keeps a traffic burst
// from turning into unbounded goroutine and graph memory.
type admission struct {
	slots chan struct{}

	mu       sync.Mutex
	queued   int
	inFlight int
	maxQueue int
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: maxQueue,
	}
}

// acquire waits for an execution slot. It fails fast with errOverloaded
// when the wait queue is full, and with the context error when the caller
// gives up (client disconnect, deadline) before a slot frees up.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return errOverloaded
	}
	a.queued++
	a.mu.Unlock()

	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.inFlight++
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the slot taken by a successful acquire.
func (a *admission) release() {
	a.mu.Lock()
	a.inFlight--
	a.mu.Unlock()
	<-a.slots
}

// depth samples the queue: requests waiting, requests executing.
func (a *admission) depth() (queued, inFlight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.inFlight
}
