package store

import (
	"encoding/json"
	"os"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/solver"
)

// CyclicRecord is the on-disk form of one cyclic.Result. Loop fingerprints
// live in their own domain (the "cyclic" prefix inside the hash input), so
// cyclic records share the objects tree and the key scheme with acyclic
// records without any possibility of collision. Results carry no witness or
// graph-indexed data, so a record materializes without the loop in hand —
// GetCyclic needs only the key.
type CyclicRecord struct {
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Type        string `json:"type"`
	OptionsKey  string `json:"optionsKey"`
	// Kind is always "cyclic" (see Record.Kind).
	Kind string `json:"kind"`

	Windows   []int   `json:"windows"`
	PerIter   int     `json:"perIter"`
	Converged bool    `json:"converged"`
	Window    int     `json:"window"`
	Slope     float64 `json:"slope"`
	Exact     bool    `json:"exact"`

	Periodic *PeriodicInfo `json:"periodic,omitempty"`

	// SavedAtUnixNs timestamps the write (diagnostics only; never compared).
	SavedAtUnixNs int64 `json:"savedAtUnixNs"`
}

// PeriodicInfo mirrors cyclic.Periodic with a fixed wire schema.
type PeriodicInfo struct {
	II         int64         `json:"ii"`
	RS         int           `json:"rs"`
	Exact      bool          `json:"exact"`
	UpperBound int           `json:"upperBound"`
	Jmax       int           `json:"jmax"`
	Stats      *solver.Stats `json:"stats,omitempty"`
}

// GetCyclic implements batch.CyclicCache. Every failure mode — missing file,
// torn or corrupt JSON, schema or key mismatch — is a miss.
func (s *Store) GetCyclic(fp string, t ddg.RegType, optsKey string) (*cyclic.Result, bool) {
	raw, err := os.ReadFile(s.path(fp, t, optsKey))
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	var rec CyclicRecord
	if err := json.Unmarshal(raw, &rec); err != nil ||
		rec.Schema != SchemaVersion || rec.Kind != "cyclic" ||
		rec.Fingerprint != fp || rec.Type != string(t) || rec.OptionsKey != optsKey ||
		len(rec.Windows) == 0 {
		s.errors.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	res := &cyclic.Result{
		Type:      t,
		Windows:   rec.Windows,
		PerIter:   rec.PerIter,
		Converged: rec.Converged,
		Window:    rec.Window,
		Slope:     rec.Slope,
		Exact:     rec.Exact,
	}
	if p := rec.Periodic; p != nil {
		res.Periodic = &cyclic.Periodic{
			II:         p.II,
			RS:         p.RS,
			Exact:      p.Exact,
			UpperBound: p.UpperBound,
			Jmax:       p.Jmax,
		}
		if p.Stats != nil {
			stats := *p.Stats
			res.Periodic.Stats = &stats
		}
	}
	s.hits.Add(1)
	return res, true
}

// PutCyclic implements batch.CyclicCache with the same atomic-write,
// failures-are-dropped protocol as Put.
func (s *Store) PutCyclic(fp string, t ddg.RegType, optsKey string, res *cyclic.Result) {
	rec := &CyclicRecord{
		Schema:        SchemaVersion,
		Kind:          "cyclic",
		Fingerprint:   fp,
		Type:          string(t),
		OptionsKey:    optsKey,
		Windows:       res.Windows,
		PerIter:       res.PerIter,
		Converged:     res.Converged,
		Window:        res.Window,
		Slope:         res.Slope,
		Exact:         res.Exact,
		SavedAtUnixNs: now().UnixNano(),
	}
	if p := res.Periodic; p != nil {
		rec.Periodic = &PeriodicInfo{
			II:         p.II,
			RS:         p.RS,
			Exact:      p.Exact,
			UpperBound: p.UpperBound,
			Jmax:       p.Jmax,
		}
		if p.Stats != nil {
			stats := *p.Stats
			rec.Periodic.Stats = &stats
		}
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		s.errors.Add(1)
		return
	}
	if err := writeAtomic(s.path(fp, t, optsKey), raw); err != nil {
		s.errors.Add(1)
		return
	}
	s.puts.Add(1)
}
