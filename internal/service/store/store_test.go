package store

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/ir"
	"regsat/internal/kernels"
	"regsat/internal/rs"
)

func testGraph(t *testing.T) (*ddg.Graph, ddg.RegType, string) {
	t.Helper()
	g := kernels.ByNameMust("lin-daxpy").Build(ddg.Superscalar)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	types := g.Types()
	if len(types) == 0 {
		t.Fatal("kernel writes no register types")
	}
	return g, types[0], ir.Fingerprint(g)
}

func computeResult(t *testing.T, g *ddg.Graph, rt ddg.RegType, opts rs.Options) *rs.Result {
	t.Helper()
	res, err := rs.Compute(context.Background(), g, rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStoreRoundTrip(t *testing.T) {
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{Method: rs.MethodExactBB})

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp, g, rt, "k"); ok {
		t.Fatal("Get on empty store hit")
	}
	s.Put(fp, rt, "k", res)
	got, ok := s.Get(fp, g, rt, "k")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.RS != res.RS || got.Exact != res.Exact {
		t.Fatalf("round trip changed result: got RS=%d exact=%v, want RS=%d exact=%v",
			got.RS, got.Exact, res.RS, res.Exact)
	}
	if !reflect.DeepEqual(got.Antichain, res.Antichain) {
		t.Fatalf("antichain changed: %v vs %v", got.Antichain, res.Antichain)
	}
	if res.Witness != nil {
		if got.Witness == nil {
			t.Fatal("witness lost in round trip")
		}
		if err := got.Witness.Validate(); err != nil {
			t.Fatalf("rebuilt witness invalid: %v", err)
		}
		if !reflect.DeepEqual(got.Witness.Times, res.Witness.Times) {
			t.Fatal("witness times changed")
		}
	}
	if res.BBStats != nil && (got.BBStats == nil || *got.BBStats != *res.BBStats) {
		t.Fatalf("bb stats changed: %+v vs %+v", got.BBStats, res.BBStats)
	}
	// The second open of the same directory (a "restart") must serve the
	// same record.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(fp, g, rt, "k"); !ok {
		t.Fatal("record did not survive reopen")
	}
	// Keys are (fingerprint, type, options): any component change misses.
	if _, ok := s2.Get(fp, g, rt, "other-options"); ok {
		t.Fatal("options key ignored")
	}
	if _, ok := s2.Get("other-fp", g, rt, "k"); ok {
		t.Fatal("fingerprint ignored")
	}
}

func TestStoreCorruptionTolerated(t *testing.T) {
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{SkipWitness: true})

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fp, rt, "k", res)
	path := s.path(fp, rt, "k")

	for _, garbage := range [][]byte{
		[]byte("{torn wri"),
		[]byte(`{"schema":999}`),
		{},
	} {
		if err := os.WriteFile(path, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(fp, g, rt, "k"); ok {
			t.Fatalf("corrupt record %q served as a hit", garbage)
		}
	}
	if errs := s.Stats().Errors; errs < 3 {
		t.Fatalf("corruption not counted: %d errors", errs)
	}
	// A good record written over the corruption serves again.
	s.Put(fp, rt, "k", res)
	if _, ok := s.Get(fp, g, rt, "k"); !ok {
		t.Fatal("store did not recover after rewrite")
	}
}

// TestStoreTruncatedRecordEveryPrefix: a record file torn at *any* byte
// boundary (power loss mid-write on a filesystem without atomic rename, a
// partial copy) must read as a miss — never a panic, never a wrong hit —
// and a rewrite must recover the slot.
func TestStoreTruncatedRecordEveryPrefix(t *testing.T) {
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{})

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fp, rt, "k", res)
	path := s.path(fp, rt, "k")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) < 8 {
		t.Fatalf("record suspiciously small: %d bytes", len(whole))
	}
	// Every prefix for small records would be slow for nothing; step through
	// a spread of cut points including the interesting edges.
	cuts := []int{0, 1, 2, len(whole) / 4, len(whole) / 2, len(whole) - 2, len(whole) - 1}
	for _, cut := range cuts {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(fp, g, rt, "k"); ok {
			t.Fatalf("record truncated to %d/%d bytes served as a hit", cut, len(whole))
		}
	}
	errsAfter := s.Stats().Errors
	if errsAfter < int64(len(cuts)) {
		t.Fatalf("truncations not counted as tolerated errors: %d < %d", errsAfter, len(cuts))
	}
	// Recovery: the original bytes serve again.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp, g, rt, "k")
	if !ok {
		t.Fatal("restored record does not serve")
	}
	if got.RS != res.RS {
		t.Fatalf("restored record decoded wrong: RS %d != %d", got.RS, res.RS)
	}
}

// TestStoreUnreadableRecordIsMiss: a record that exists but cannot be read
// (permission denied) must degrade to a counted miss, not an error the
// analysis pipeline sees.
func TestStoreUnreadableRecordIsMiss(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores file permissions")
	}
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{SkipWitness: true})
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fp, rt, "k", res)
	path := s.path(fp, rt, "k")
	if err := os.Chmod(path, 0o000); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(path, 0o644)
	if _, ok := s.Get(fp, g, rt, "k"); ok {
		t.Fatal("unreadable record served as a hit")
	}
	if s.Stats().Errors == 0 {
		t.Fatal("unreadable record not counted")
	}
}

func TestStoreSchemaMismatchStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("regsat-store v999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "objects", "zz", "alien.json")
	if err := os.MkdirAll(filepath.Dir(foreign), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(foreign, []byte("alien schema"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{SkipWitness: true})
	s.Put(fp, rt, "k", res)
	if _, ok := s.Get(fp, g, rt, "k"); !ok {
		t.Fatal("fresh tree under mismatched VERSION does not serve")
	}
	// The foreign tree is left alone.
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign-schema record touched: %v", err)
	}
	if s.objects == filepath.Join(dir, "objects") {
		t.Fatal("mismatched schema reused the foreign objects tree")
	}
}

func TestStoreWitnessLengthMismatchIsMiss(t *testing.T) {
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{})
	if res.Witness == nil {
		t.Fatal("expected a witness")
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(fp, rt, "k", res)

	// A graph with a different node count sharing the key (impossible for a
	// true fingerprint, but exactly what a hash collision or a tampered
	// store would look like) must be a tolerated miss, not a panic.
	other := kernels.ByNameMust("fig2").Build(ddg.Superscalar)
	if err := other.Finalize(); err != nil {
		t.Fatal(err)
	}
	if other.NumNodes() == g.NumNodes() {
		t.Skip("test kernels coincide in size")
	}
	if _, ok := s.Get(fp, other, rt, "k"); ok {
		t.Fatal("witness of wrong size served")
	}
}

func TestStoreLen(t *testing.T) {
	g, rt, fp := testGraph(t)
	res := computeResult(t, g, rt, rs.Options{SkipWitness: true})
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range []string{"a", "b", "c"} {
		s.Put(fp, rt, key, res)
		if n, err := s.Len(); err != nil || n != i+1 {
			t.Fatalf("Len after %d puts: %d, %v", i+1, n, err)
		}
	}
	// Overwriting an existing key does not grow the store.
	s.Put(fp, rt, "a", res)
	if n, _ := s.Len(); n != 3 {
		t.Fatalf("overwrite grew the store to %d", n)
	}
}

// TestStoreCyclicRoundTrip: periodic loop results persist and reload through
// the batch.CyclicCache side of the store, keyed by the loop's
// distance-sensitive fingerprint.
func TestStoreCyclicRoundTrip(t *testing.T) {
	l, err := cyclic.ParseString(`ddg "rt" loop
node a op=mul lat=2 writes=float
node b op=add lat=1 writes=float
edge a b flow float
edge b a flow float dist=1
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cyclic.Analyze(context.Background(), l, ddg.Float, cyclic.Options{
		Certify: true,
		RS:      rs.Options{Method: rs.MethodExactBB, SkipWitness: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Periodic == nil {
		t.Fatal("small kernel did not certify")
	}

	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := l.Fingerprint()
	key := (cyclic.Options{}).Key()
	if _, ok := s.GetCyclic(fp, ddg.Float, key); ok {
		t.Fatal("GetCyclic on empty store hit")
	}
	s.PutCyclic(fp, ddg.Float, key, res)
	got, ok := s.GetCyclic(fp, ddg.Float, key)
	if !ok {
		t.Fatal("GetCyclic after PutCyclic missed")
	}
	if !reflect.DeepEqual(got.Windows, res.Windows) || got.PerIter != res.PerIter ||
		got.Converged != res.Converged || got.Slope != res.Slope || got.Exact != res.Exact {
		t.Fatalf("round trip changed result: %+v vs %+v", got, res)
	}
	if got.Periodic == nil || got.Periodic.II != res.Periodic.II || got.Periodic.RS != res.Periodic.RS ||
		got.Periodic.Exact != res.Periodic.Exact {
		t.Fatalf("periodic certificate changed: %+v vs %+v", got.Periodic, res.Periodic)
	}

	// Restart survives; key components are respected.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetCyclic(fp, ddg.Float, key); !ok {
		t.Fatal("cyclic record did not survive reopen")
	}
	if _, ok := s2.GetCyclic(fp, ddg.Float, "other-options"); ok {
		t.Fatal("options key ignored")
	}
	if _, ok := s2.GetCyclic(fp, ddg.Int, key); ok {
		t.Fatal("register type ignored")
	}

	// A loop differing only in a carried distance has a different
	// fingerprint, so its results can never alias this record.
	far := l.Clone()
	for i := range far.Edges() {
		if far.Edges()[i].Dist == 1 {
			far.Edges()[i].Dist = 2
		}
	}
	if far.Fingerprint() == fp {
		t.Fatal("fingerprint ignores loop-carried distance")
	}
	if _, ok := s2.GetCyclic(far.Fingerprint(), ddg.Float, key); ok {
		t.Fatal("distance-shifted loop served another loop's record")
	}

	// An acyclic Get at the same coordinates must not decode a cyclic
	// record (and vice versa the fingerprint domains are disjoint anyway).
	g := kernels.ByNameMust("lin-daxpy").Build(ddg.Superscalar)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(fp, g, ddg.Float, key); ok {
		t.Fatal("acyclic Get decoded a cyclic record")
	}
}
