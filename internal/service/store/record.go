package store

import (
	"fmt"

	"regsat/internal/ddg"
	"regsat/internal/rs"
	"regsat/internal/schedule"
	"regsat/internal/solver"
)

// Record is the on-disk form of one rs.Result. Antichains and witness times
// are stored in node-ID space: the fingerprint excludes names, so a record
// written for one graph is valid for every structural twin, and the witness
// schedule is rebuilt over whichever graph asks.
//
// The in-memory killing-function view (rs.Result.Killing) is deliberately
// not persisted — it aliases a live rs.Analysis; everything it proves (the
// saturation, the antichain, the witness) is already here. L2-served
// results therefore carry Killing == nil, which every consumer treats as
// "not available" (exactly like intLP-method results).
type Record struct {
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Type        string `json:"type"`
	OptionsKey  string `json:"optionsKey"`
	// Kind discriminates record forms sharing the objects tree: empty for
	// acyclic RS records, "cyclic" for CyclicRecord. Each reader rejects the
	// other's kind, so a key collision can never cross-decode.
	Kind string `json:"kind,omitempty"`

	RS        int   `json:"rs"`
	Antichain []int `json:"antichain,omitempty"`
	Exact     bool  `json:"exact"`
	// WitnessTimes is the witness schedule's issue time per node ID
	// (including ⊥); nil when the result was computed with SkipWitness.
	WitnessTimes []int64 `json:"witnessTimes,omitempty"`

	ILPUpperBound int           `json:"ilpUpperBound,omitempty"`
	ILP           *ILPInfo      `json:"ilp,omitempty"`
	BBStats       *BBStats      `json:"bbStats,omitempty"`
	SolverStats   *solver.Stats `json:"solverStats,omitempty"`

	// SavedAtUnixNs timestamps the write (diagnostics only; never compared).
	SavedAtUnixNs int64 `json:"savedAtUnixNs"`
}

// ILPInfo mirrors rs.ILPInfo with a fixed wire schema.
type ILPInfo struct {
	Vars            int `json:"vars"`
	IntVars         int `json:"intVars"`
	Constrs         int `json:"constrs"`
	RedundantArcs   int `json:"redundantArcs"`
	NeverAlivePairs int `json:"neverAlivePairs"`
}

// BBStats mirrors rs.ExactStats with a fixed wire schema.
type BBStats struct {
	Leaves     int64 `json:"leaves"`
	Pruned     int64 `json:"pruned"`
	Capped     bool  `json:"capped"`
	UpperBound int   `json:"upperBound"`
}

// newRecord captures res for persistence.
func newRecord(fp string, t ddg.RegType, optsKey string, res *rs.Result) *Record {
	rec := &Record{
		Schema:        SchemaVersion,
		Fingerprint:   fp,
		Type:          string(t),
		OptionsKey:    optsKey,
		RS:            res.RS,
		Antichain:     res.Antichain,
		Exact:         res.Exact,
		ILPUpperBound: res.ILPUpperBound,
		SavedAtUnixNs: now().UnixNano(),
	}
	if res.Witness != nil {
		rec.WitnessTimes = res.Witness.Times
	}
	if res.ILP != nil {
		rec.ILP = &ILPInfo{
			Vars:            res.ILP.Vars,
			IntVars:         res.ILP.IntVars,
			Constrs:         res.ILP.Constrs,
			RedundantArcs:   res.ILP.RedundantArcs,
			NeverAlivePairs: res.ILP.NeverAlivePairs,
		}
	}
	if res.BBStats != nil {
		rec.BBStats = &BBStats{
			Leaves:     res.BBStats.Leaves,
			Pruned:     res.BBStats.Pruned,
			Capped:     res.BBStats.Capped,
			UpperBound: res.BBStats.UpperBound,
		}
	}
	if res.SolverStats != nil {
		stats := *res.SolverStats
		rec.SolverStats = &stats
	}
	return rec
}

// result materializes the record against g.
func (rec *Record) result(g *ddg.Graph, t ddg.RegType) (*rs.Result, error) {
	for _, id := range rec.Antichain {
		if id < 0 || id >= g.NumNodes() {
			return nil, fmt.Errorf("store: antichain node %d outside graph (%d nodes)", id, g.NumNodes())
		}
	}
	res := &rs.Result{
		Type:          t,
		RS:            rec.RS,
		Antichain:     rec.Antichain,
		Exact:         rec.Exact,
		ILPUpperBound: rec.ILPUpperBound,
	}
	if rec.WitnessTimes != nil {
		if len(rec.WitnessTimes) != g.NumNodes() {
			return nil, fmt.Errorf("store: witness has %d times for %d nodes", len(rec.WitnessTimes), g.NumNodes())
		}
		res.Witness = schedule.New(g, rec.WitnessTimes)
	}
	if rec.ILP != nil {
		res.ILP = &rs.ILPInfo{
			Vars:            rec.ILP.Vars,
			IntVars:         rec.ILP.IntVars,
			Constrs:         rec.ILP.Constrs,
			RedundantArcs:   rec.ILP.RedundantArcs,
			NeverAlivePairs: rec.ILP.NeverAlivePairs,
		}
	}
	if rec.BBStats != nil {
		res.BBStats = &rs.ExactStats{
			Leaves:     rec.BBStats.Leaves,
			Pruned:     rec.BBStats.Pruned,
			Capped:     rec.BBStats.Capped,
			UpperBound: rec.BBStats.UpperBound,
		}
	}
	if rec.SolverStats != nil {
		stats := *rec.SolverStats
		res.SolverStats = &stats
	}
	return res, nil
}
