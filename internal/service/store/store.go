// Package store is the analysis daemon's persistent, content-addressed
// result store: a second-level cache under the batch engine's in-memory
// memo (it implements batch.ResultCache), keyed exactly like the memo — the
// ir structural fingerprint of the graph, the register type, and the
// canonicalized options key — so RS results survive process restarts and
// are shared across processes pointing at the same directory.
//
// Layout:
//
//	<root>/VERSION            "regsat-store v<schema>\n"
//	<root>/objects/ab/<key>.json
//
// where <key> is the hex SHA-256 of "fingerprint\x00type\x00optionsKey" and
// "ab" its first byte — a fan-out that keeps directories small on large
// corpora. Records are JSON (see Record) with an embedded schema number.
//
// The store is crash-safe and corruption-tolerant by construction:
//
//   - writes go to a temp file in the objects directory and are renamed
//     into place, so readers never observe a partial record;
//   - a record that fails to read, parse, or match its schema/key is
//     treated as a miss (and counted in Stats.Errors), never as an error
//     the analysis pipeline sees;
//   - a VERSION file from a different schema makes Open start over in a
//     fresh objects tree (objects-v<schema>), leaving the old one alone.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/rs"
)

// SchemaVersion is the record schema this build reads and writes. Bump it
// whenever Record changes incompatibly: old stores are then ignored (not
// deleted) and a fresh objects tree is started.
const SchemaVersion = 1

// Store is a persistent result cache rooted at a directory. All methods are
// safe for concurrent use by multiple goroutines — and, thanks to the
// atomic rename protocol, by multiple processes sharing the directory.
type Store struct {
	root    string
	objects string

	hits, misses, puts, errors atomic.Int64
}

// Open opens (creating if necessary) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	objects := "objects"
	versionPath := filepath.Join(dir, "VERSION")
	want := fmt.Sprintf("regsat-store v%d\n", SchemaVersion)
	raw, err := os.ReadFile(versionPath)
	switch {
	case os.IsNotExist(err):
		if err := os.WriteFile(versionPath, []byte(want), 0o644); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	case string(raw) != want:
		// A different (older or newer) schema owns the default tree; keep
		// our records in a schema-suffixed tree beside it.
		objects = fmt.Sprintf("objects-v%d", SchemaVersion)
	}
	s := &Store{root: dir, objects: filepath.Join(dir, objects)}
	if err := os.MkdirAll(s.objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// path maps a cache key to its record file.
func (s *Store) path(fp string, t ddg.RegType, optsKey string) string {
	h := sha256.Sum256([]byte(fp + "\x00" + string(t) + "\x00" + optsKey))
	name := hex.EncodeToString(h[:])
	return filepath.Join(s.objects, name[:2], name+".json")
}

// Get implements batch.ResultCache: it returns the stored result for
// (fp, t, optsKey) materialized against g, or a miss. Every failure mode —
// missing file, torn or corrupt JSON, schema or key mismatch, a witness
// that does not fit g — is a miss.
func (s *Store) Get(fp string, g *ddg.Graph, t ddg.RegType, optsKey string) (*rs.Result, bool) {
	raw, err := os.ReadFile(s.path(fp, t, optsKey))
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil ||
		rec.Schema != SchemaVersion || rec.Kind != "" ||
		rec.Fingerprint != fp || rec.Type != string(t) || rec.OptionsKey != optsKey {
		s.errors.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	res, err := rec.result(g, t)
	if err != nil {
		s.errors.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// Put implements batch.ResultCache: it persists res under (fp, t, optsKey)
// with an atomic write. Failures are counted and dropped — a full disk must
// not fail an analysis that already succeeded.
func (s *Store) Put(fp string, t ddg.RegType, optsKey string, res *rs.Result) {
	rec := newRecord(fp, t, optsKey, res)
	raw, err := json.Marshal(rec)
	if err != nil {
		s.errors.Add(1)
		return
	}
	path := s.path(fp, t, optsKey)
	if err := writeAtomic(path, raw); err != nil {
		s.errors.Add(1)
		return
	}
	s.puts.Add(1)
}

// writeAtomic writes data to path via a temp file in the same directory and
// an atomic rename, creating the parent directory on first use.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Len walks the store and returns the number of resident records — an
// O(records) maintenance helper for tests and the ops runbook, not a hot
// path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.objects, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n, err
}

// Stats is the store's cumulative behavior since Open.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts records persisted.
	Hits, Misses, Puts int64
	// Errors counts corrupt/unreadable records tolerated on Get and failed
	// writes dropped on Put.
	Errors int64
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
		Errors: s.errors.Load(),
	}
}

// now is a test seam for record timestamps.
var now = time.Now
