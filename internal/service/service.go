// Package service is the register-saturation analysis daemon behind cmd/rsd:
// a long-running HTTP/JSON front end over the batch engine (regsat.AnalyzeAll)
// with a persistent fingerprint-keyed result store layered under the
// in-memory memo.
//
// Endpoints:
//
//	POST /v1/analyze              submit inline .ddg text and/or corpus
//	                              references; single-shot JSON response
//	POST /v1/analyze?stream=ndjson same, streamed as NDJSON items
//	GET  /v1/ring                 cluster topology (membership, vnodes)
//	GET  /healthz                 liveness + admission-queue snapshot
//	GET  /metrics                 Prometheus text exposition
//
// With Config.Peers set the daemon runs as one replica of a
// fingerprint-sharded fleet: a consistent-hash ring over the membership
// assigns every graph fingerprint an owning replica, requests are
// partitioned per item and non-owned items forwarded to their owners
// (batched, exactly one hop — see forwardHeader), so each replica's memo
// and store converge on its shard instead of N copies of everything.
//
// The daemon guarantees:
//
//   - admission control: a bounded queue in front of a bounded worker pool;
//     a request arriving with the queue full is shed with HTTP 429 instead
//     of piling up memory;
//   - per-request deadlines and cancellation: the request context (deadline
//     or client disconnect) threads through the batch engine into in-flight
//     simplex iterations and branch-and-bound nodes;
//   - result persistence: with a store attached, every computed RS result
//     is written through to disk and every structurally identical request
//     afterwards — across restarts and across processes — is served
//     without solving anything.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"regsat/client"
	"regsat/internal/batch"
	"regsat/internal/obs"
	"regsat/internal/service/store"
	"regsat/internal/solver"
)

// Config configures a Server. The zero value serves with defaults and no
// persistent store.
type Config struct {
	// Store is the optional persistent result store (L2 under the memo).
	Store *store.Store
	// CorpusRoot enables server-side corpus references: request Corpus
	// entries resolve strictly under this directory. Empty disables them.
	CorpusRoot string
	// MaxInFlight bounds concurrently executing requests
	// (0 = GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond it
	// requests are shed with 429 (0 = DefaultMaxQueue).
	MaxQueue int
	// Workers is the batch worker count per request (0 = GOMAXPROCS).
	Workers int
	// DefaultTimeout applies when a request names none (0 = 60s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request timeouts (0 = 10m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// CacheSize bounds the in-memory memo (0 = batch.DefaultCacheSize).
	CacheSize int
	// Logger receives request-level diagnostics as structured records with
	// request/trace IDs attached (nil = slog.Default()).
	Logger *slog.Logger
	// Tracer records request traces (nil = a tracer that samples nothing on
	// its own but still records requests that force tracing or arrive with a
	// traceparent). Its ring backs GET /v1/trace/{id}.
	Tracer *obs.Tracer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the daemon's
	// handler. Off by default: the profiling surface is a diagnostic tool,
	// not part of the public API.
	EnablePprof bool

	// Peers enables cluster mode: the full fleet membership as base URLs,
	// including this replica. Each replica builds a consistent-hash ring
	// over the list and serves the items it owns, forwarding the rest to
	// their owners (one hop, guarded). Empty runs single-process.
	Peers []string
	// Self is this replica's own entry in Peers — required in cluster mode
	// so the replica knows which ring shard is local.
	Self string
	// VNodes is the ring's virtual-node count per member
	// (0 = client.DefaultVNodes). Every replica and every cluster-aware
	// client must agree on it.
	VNodes int
}

// DefaultMaxQueue bounds the admission queue when Config.MaxQueue is zero.
const DefaultMaxQueue = 64

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the analysis daemon. Create one with New, mount Handler on an
// http.Server, and call SetDraining(true) before shutting that server down
// so load balancers see /healthz flip before in-flight work drains.
type Server struct {
	cfg     Config
	base    *batch.Engine // owns the shared L1 memo (and L2 write-through)
	adm     *admission
	cluster *cluster    // nil in single-process mode
	tracer  *obs.Tracer // never nil after New

	draining atomic.Bool

	requests   atomic.Int64
	rejected   atomic.Int64
	items      atomic.Int64
	itemErrors atomic.Int64

	solverMu  sync.Mutex
	solverAgg solver.Stats
	solves    int64
}

// New creates a Server. The batch engine, its memo, and the store are
// shared by every request the server ever handles. It fails only on an
// inconsistent cluster configuration (Peers without Self, Self not a peer).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cl, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	opts := batch.Options{CacheSize: cfg.CacheSize}
	if cfg.Store != nil {
		opts.L2 = cfg.Store
	}
	tracer := cfg.Tracer
	if tracer == nil {
		// Exported spans name the replica in cluster mode, so a stitched
		// cross-replica trace stays attributable to its producers.
		svc := "rsd"
		if cl != nil {
			svc = cl.self
		}
		tracer = obs.NewTracer(obs.Config{Service: svc})
	}
	return &Server{
		cfg:     cfg,
		base:    batch.New(opts),
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		cluster: cl,
		tracer:  tracer,
	}, nil
}

// Engine exposes the shared batch engine (tests and metrics).
func (s *Server) Engine() *batch.Engine { return s.base }

// SetDraining flips the drain flag: /healthz answers 503 and new analyze
// requests are refused, while requests already admitted run to completion.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Tracer exposes the server's tracer (tests and the trace export path).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/ring", s.handleRing)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	queued, inflight := s.adm.depth()
	h := client.Health{
		Status:   "ok",
		Queued:   queued,
		InFlight: inflight,
		Store:    s.cfg.Store != nil,
	}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)

	// Correlation ID: reuse the caller's (clients and forwarding
	// coordinators send one), mint one otherwise. Every response — success,
	// error, 429 — echoes it, and every log record of this request carries
	// it, so one ID follows a request across replica logs.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)
	ctx := obs.ContextWithRequestID(r.Context(), reqID)

	if s.draining.Load() {
		s.httpError(ctx, w, "draining", http.StatusServiceUnavailable)
		return
	}
	forwarded := r.Header.Get(forwardHeader) != ""
	if s.cluster != nil && forwarded {
		s.cluster.forwardsReceived.Add(1)
	}

	var req client.AnalyzeRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.httpError(ctx, w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Graphs) == 0 && len(req.Corpus) == 0 {
		s.httpError(ctx, w, "request names no graphs and no corpus references", http.StatusBadRequest)
		return
	}

	// Trace: join the caller's trace when the request carries a traceparent
	// (a forwarded sub-request, or a client that originated its own trace),
	// record unconditionally when the body asks (Trace), sample otherwise.
	ctx, root := s.tracer.StartRequest(ctx, "server.analyze", obs.Extract(r.Header), req.Trace)
	defer root.End()
	root.SetAttr(
		obs.Str("requestId", reqID),
		obs.Bool("forwarded", forwarded),
		obs.Int("graphs", int64(len(req.Graphs))),
		obs.Int("corpus", int64(len(req.Corpus))),
		obs.Str("method", req.Options.Method),
	)

	batchOpts, err := s.batchOptions(req.Options)
	if err != nil {
		s.httpError(ctx, w, err.Error(), http.StatusBadRequest)
		return
	}
	src, err := s.buildSource(&req)
	if err != nil {
		s.httpError(ctx, w, err.Error(), http.StatusBadRequest)
		return
	}

	// Deadline: the context reaches every in-flight solve, so an expired
	// request interrupts its own MILP/BB work instead of abandoning it.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Admission: shed immediately when the wait queue is full, otherwise
	// queue for an execution slot (abandoning the wait if the client
	// disconnects or the deadline passes first). The queue span makes the
	// wait visible: "slow request" and "queued request" look identical from
	// outside, and this is the only place that can tell them apart.
	_, qsp := obs.StartSpan(ctx, "server.queue")
	err = s.adm.acquire(ctx)
	qsp.End()
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.httpError(ctx, w, "analysis queue is full, retry later", http.StatusTooManyRequests)
			return
		}
		s.httpError(ctx, w, fmt.Sprintf("request expired while queued: %v", err), http.StatusServiceUnavailable)
		return
	}
	defer s.adm.release()

	engine := s.base.WithOptions(batchOpts)
	before := engine.Stats()

	// Cluster mode: a request straight from a client is coordinated —
	// partitioned by ring ownership and forwarded (one hop). A request
	// already carrying the forward guard is served entirely locally.
	if s.cluster != nil && !forwarded {
		s.serveClustered(ctx, w, r, &req, engine, before, src)
		return
	}

	ch, err := engine.Run(ctx, src)
	if err != nil {
		s.httpError(ctx, w, err.Error(), http.StatusInternalServerError)
		return
	}

	withWitness := req.Options.Witness
	wantDDG := req.Options.Reduce != nil
	if r.URL.Query().Get("stream") != "" {
		s.streamResults(ctx, w, ch, engine, before, withWitness, wantDDG, root)
		return
	}

	resp := client.AnalyzeResponse{Items: []client.Item{}, RequestID: reqID}
	for res := range ch {
		resp.Items = append(resp.Items, s.itemToWire(res, withWitness, wantDDG))
	}
	if err := ctx.Err(); err != nil {
		// The batch was cut short; report what finished plus the cause, so
		// the client never mistakes a truncated item list for a complete one.
		resp.Error = fmt.Sprintf("batch interrupted: %v", err)
		s.log(ctx).Warn("analyze interrupted", "err", err)
	}
	resp.Stats = runStatsSince(engine, before)
	s.attachTrace(&resp, root, req.TraceSpans)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// streamResults writes one NDJSON StreamEvent per finished item, flushing
// between items, then a final stats event (carrying the trace ID when the
// request was recorded).
func (s *Server) streamResults(ctx context.Context, w http.ResponseWriter, ch <-chan batch.Result,
	engine *batch.Engine, before batch.Stats, withWitness, wantDDG bool, root *obs.Span) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev client.StreamEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for res := range ch {
		item := s.itemToWire(res, withWitness, wantDDG)
		emit(client.StreamEvent{Item: &item})
	}
	if err := ctx.Err(); err != nil {
		emit(client.StreamEvent{Error: fmt.Sprintf("batch interrupted: %v", err)})
	}
	stats := runStatsSince(engine, before)
	emit(client.StreamEvent{Stats: &stats, TraceID: string(root.TraceID())})
}

// runStatsSince renders the engine's counter movement as this request's
// cache accounting (exact with one request in flight, else approximate).
func runStatsSince(engine *batch.Engine, before batch.Stats) client.RunStats {
	after := engine.Stats()
	return client.RunStats{
		L1Hits:   after.Hits - before.Hits,
		L2Hits:   after.L2Hits - before.L2Hits,
		Computed: after.Misses - before.Misses,
	}
}

// recordSolve folds one solve's stats into the server-wide aggregate
// /metrics reports.
func (s *Server) recordSolve(st *solver.Stats) {
	if st == nil {
		return
	}
	s.solverMu.Lock()
	s.solverAgg.Add(*st)
	s.solves++
	s.solverMu.Unlock()
}
