package service

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"

	"regsat/client"
	"regsat/internal/obs"
)

// handleTrace serves GET /v1/trace/{id}: the recorded spans of one trace as
// NDJSON, one obs.SpanData per line — exactly what cmd/rstrace reads. The
// backing ring is bounded, so a recorded trace eventually answers 404 once
// newer traces evict it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.tracer.Collect(obs.TraceID(id))
	if len(spans) == 0 {
		s.httpError(r.Context(), w, "unknown trace (never recorded, or evicted from the bounded ring)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, sp := range spans {
		enc.Encode(sp)
	}
}

// httpError writes a JSON error payload {"error", "requestId"} so every
// failure — bad request, shed load, interrupted batch — carries the
// correlation ID the caller needs to find it in the daemon's logs. 5xx and
// shed responses are also logged (4xx request faults are the caller's
// bug, not the daemon's).
func (s *Server) httpError(ctx context.Context, w http.ResponseWriter, msg string, code int) {
	if code >= http.StatusInternalServerError || code == http.StatusTooManyRequests {
		s.log(ctx).Warn("request failed", "status", code, "err", msg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId,omitempty"`
	}{Error: msg, RequestID: obs.RequestIDFromContext(ctx)})
}

// log returns the server's logger with the context's correlation and trace
// IDs attached, so every record of one request carries the same handles.
func (s *Server) log(ctx context.Context) *slog.Logger {
	lg := s.cfg.Logger
	if id := obs.RequestIDFromContext(ctx); id != "" {
		lg = lg.With("requestId", id)
	}
	if sp := obs.FromContext(ctx); sp != nil {
		lg = lg.With("traceId", string(sp.TraceID()), "spanId", string(sp.ID()))
	}
	return lg
}

// attachTrace finishes the root span and decorates the response with the
// trace ID (always, when recorded) and the inline span attachment (only
// when asked — forwarding coordinators use it to stitch). Ending the root
// here, before encoding, is what makes the attachment complete; the
// handler's deferred End is then a no-op.
func (s *Server) attachTrace(resp *client.AnalyzeResponse, root *obs.Span, wantSpans bool) {
	if root == nil {
		return
	}
	resp.TraceID = string(root.TraceID())
	if !wantSpans {
		return
	}
	root.End()
	resp.Spans = spansToWire(s.tracer.Collect(root.TraceID()))
}

// spansToWire converts recorded spans to the wire schema (field-identical
// JSON; the copy keeps regsat/client free of internal types).
func spansToWire(spans []obs.SpanData) []client.TraceSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]client.TraceSpan, len(spans))
	for i, sp := range spans {
		ws := client.TraceSpan{
			TraceID:       sp.TraceID,
			SpanID:        sp.SpanID,
			Parent:        sp.Parent,
			Name:          sp.Name,
			Service:       sp.Service,
			StartUnixNs:   sp.StartUnixNs,
			DurationNs:    sp.DurationNs,
			Attrs:         sp.Attrs,
			DroppedEvents: sp.DroppedEvents,
		}
		if len(sp.Events) > 0 {
			ws.Events = make([]client.TraceEvent, len(sp.Events))
			for j, ev := range sp.Events {
				ws.Events[j] = client.TraceEvent{Name: ev.Name, OffsetNs: ev.OffsetNs, Attrs: ev.Attrs}
			}
		}
		out[i] = ws
	}
	return out
}

// wireToSpans is the inverse: a forwarded response's inline spans back into
// ring form for stitching.
func wireToSpans(spans []client.TraceSpan) []obs.SpanData {
	if len(spans) == 0 {
		return nil
	}
	out := make([]obs.SpanData, len(spans))
	for i, ws := range spans {
		sp := obs.SpanData{
			TraceID:       ws.TraceID,
			SpanID:        ws.SpanID,
			Parent:        ws.Parent,
			Name:          ws.Name,
			Service:       ws.Service,
			StartUnixNs:   ws.StartUnixNs,
			DurationNs:    ws.DurationNs,
			Attrs:         ws.Attrs,
			DroppedEvents: ws.DroppedEvents,
		}
		if len(ws.Events) > 0 {
			sp.Events = make([]obs.EventData, len(ws.Events))
			for j, ev := range ws.Events {
				sp.Events[j] = obs.EventData{Name: ev.Name, OffsetNs: ev.OffsetNs, Attrs: ev.Attrs}
			}
		}
		out[i] = sp
	}
	return out
}
