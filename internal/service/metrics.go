package service

import (
	"fmt"
	"net/http"

	"regsat/internal/ir"
)

// handleMetrics renders the Prometheus text exposition: the admission
// queue, request/item counters, the shared engine's L1/L2 cache movement,
// the persistent store's counters, the process-wide ir interner, and the
// aggregate MILP solver accounting.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	queued, inflight := s.adm.depth()
	p("# TYPE regsat_queue_depth gauge\n")
	p("regsat_queue_depth %d\n", queued)
	p("# TYPE regsat_inflight gauge\n")
	p("regsat_inflight %d\n", inflight)
	p("# TYPE regsat_draining gauge\n")
	p("regsat_draining %d\n", boolGauge(s.draining.Load()))

	p("# TYPE regsat_requests_total counter\n")
	p("regsat_requests_total %d\n", s.requests.Load())
	p("# TYPE regsat_rejected_total counter\n")
	p("regsat_rejected_total %d\n", s.rejected.Load())
	p("# TYPE regsat_items_total counter\n")
	p("regsat_items_total %d\n", s.items.Load())
	p("# TYPE regsat_item_errors_total counter\n")
	p("regsat_item_errors_total %d\n", s.itemErrors.Load())

	// L1 memo (shared across every request) and computations performed.
	bs := s.base.Stats()
	p("# TYPE regsat_memo_hits_total counter\n")
	p("regsat_memo_hits_total %d\n", bs.Hits)
	p("# TYPE regsat_memo_l2_hits_total counter\n")
	p("regsat_memo_l2_hits_total %d\n", bs.L2Hits)
	p("# TYPE regsat_rs_computed_total counter\n")
	p("regsat_rs_computed_total %d\n", bs.Misses)

	// Persistent store (L2), when attached.
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		p("# TYPE regsat_store_hits_total counter\n")
		p("regsat_store_hits_total %d\n", st.Hits)
		p("# TYPE regsat_store_misses_total counter\n")
		p("regsat_store_misses_total %d\n", st.Misses)
		p("# TYPE regsat_store_puts_total counter\n")
		p("regsat_store_puts_total %d\n", st.Puts)
		p("# TYPE regsat_store_errors_total counter\n")
		p("regsat_store_errors_total %d\n", st.Errors)
	}

	// Cluster sharding, when this daemon is a fleet replica.
	if c := s.cluster; c != nil {
		p("# TYPE regsat_cluster_members gauge\n")
		p("regsat_cluster_members %d\n", len(c.ring.Members()))
		p("# TYPE regsat_cluster_vnodes gauge\n")
		p("regsat_cluster_vnodes %d\n", c.ring.VNodes())
		p("# TYPE regsat_cluster_forwards_sent_total counter\n")
		p("regsat_cluster_forwards_sent_total %d\n", c.forwardsSent.Load())
		p("# TYPE regsat_cluster_forwards_received_total counter\n")
		p("regsat_cluster_forwards_received_total %d\n", c.forwardsReceived.Load())
		p("# TYPE regsat_cluster_forwards_failed_total counter\n")
		p("regsat_cluster_forwards_failed_total %d\n", c.forwardsFailed.Load())
		p("# TYPE regsat_cluster_local_items_total counter\n")
		p("regsat_cluster_local_items_total %d\n", c.localItems.Load())
		p("# TYPE regsat_cluster_remote_items_total counter\n")
		p("regsat_cluster_remote_items_total %d\n", c.remoteItems.Load())
	}

	// Trace ring movement and the live sampling knob.
	ts := s.tracer.Stats()
	p("# TYPE regsat_trace_sample_rate gauge\n")
	p("regsat_trace_sample_rate %g\n", s.tracer.SampleRate())
	p("# TYPE regsat_trace_ring_traces gauge\n")
	p("regsat_trace_ring_traces %d\n", ts.Traces)
	p("# TYPE regsat_trace_evicted_total counter\n")
	p("regsat_trace_evicted_total %d\n", ts.EvictedTraces)
	p("# TYPE regsat_trace_dropped_spans_total counter\n")
	p("regsat_trace_dropped_spans_total %d\n", ts.DroppedSpans)

	// Process-wide analysis-snapshot interner.
	cs := ir.Stats()
	p("# TYPE regsat_interner_hits_total counter\n")
	p("regsat_interner_hits_total %d\n", cs.Hits)
	p("# TYPE regsat_interner_misses_total counter\n")
	p("regsat_interner_misses_total %d\n", cs.Misses)
	p("# TYPE regsat_interner_evictions_total counter\n")
	p("regsat_interner_evictions_total %d\n", cs.Evictions)
	p("# TYPE regsat_interner_entries gauge\n")
	p("regsat_interner_entries %d\n", cs.Entries)
	p("# TYPE regsat_interner_resident_bytes gauge\n")
	p("regsat_interner_resident_bytes %d\n", cs.ResidentBytes)

	// Aggregate MILP solver accounting across every solve the daemon ran.
	s.solverMu.Lock()
	agg, solves := s.solverAgg, s.solves
	s.solverMu.Unlock()
	p("# TYPE regsat_solver_solves_total counter\n")
	p("regsat_solver_solves_total %d\n", solves)
	p("# TYPE regsat_solver_nodes_total counter\n")
	p("regsat_solver_nodes_total %d\n", agg.Nodes)
	p("# TYPE regsat_solver_simplex_iters_total counter\n")
	p("regsat_solver_simplex_iters_total %d\n", agg.SimplexIters)
	p("# TYPE regsat_solver_warm_starts_total counter\n")
	p("regsat_solver_warm_starts_total %d\n", agg.WarmStarts)
	p("# TYPE regsat_solver_cold_starts_total counter\n")
	p("regsat_solver_cold_starts_total %d\n", agg.ColdStarts)
	p("# TYPE regsat_solver_incumbents_total counter\n")
	p("regsat_solver_incumbents_total %d\n", agg.Incumbents)
	p("# TYPE regsat_solver_fallbacks_total counter\n")
	p("regsat_solver_fallbacks_total %d\n", agg.Fallbacks)
	p("# TYPE regsat_solver_presolve_rows_total counter\n")
	p("regsat_solver_presolve_rows_total %d\n", agg.PresolveRows)
	p("# TYPE regsat_solver_presolve_cols_total counter\n")
	p("regsat_solver_presolve_cols_total %d\n", agg.PresolveCols)
	p("# TYPE regsat_solver_presolve_tightenings_total counter\n")
	p("regsat_solver_presolve_tightenings_total %d\n", agg.PresolveTightenings)
	p("# TYPE regsat_solver_cuts_added_total counter\n")
	p("regsat_solver_cuts_added_total %d\n", agg.CutsAdded)
	p("# TYPE regsat_solver_cuts_active_total counter\n")
	p("regsat_solver_cuts_active_total %d\n", agg.CutsActive)
	p("# TYPE regsat_solver_branch_probes_total counter\n")
	p("regsat_solver_branch_probes_total %d\n", agg.BranchProbes)
	p("# TYPE regsat_solver_bland_iters_total counter\n")
	p("regsat_solver_bland_iters_total %d\n", agg.BlandIters)
	p("# TYPE regsat_solver_seconds_total counter\n")
	p("regsat_solver_seconds_total %g\n", agg.Duration.Seconds())
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
