package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"regsat/client"
	"regsat/internal/service/store"
)

const corpusRoot = "../../testdata"

// newTestServer boots a service over httptest and returns a client for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *client.Client, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	return s, client.New(hs.URL, hs.Client()), hs.Close
}

// TestServiceEndToEndPersistence is the acceptance path: start a daemon on
// a fresh store, analyze the whole committed corpus, "restart" (new server,
// new engine, same store directory), re-analyze, and require identical
// results with zero RS computations — every result served from L2.
func TestServiceEndToEndPersistence(t *testing.T) {
	dir := t.TempDir()
	req := &client.AnalyzeRequest{
		Corpus:  []string{"."},
		Options: client.AnalyzeOptions{Method: "bb"},
	}

	runDaemon := func() (*client.AnalyzeResponse, store.Stats) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, c, done := newTestServer(t, Config{Store: st, CorpusRoot: corpusRoot})
		defer done()
		resp, err := c.Analyze(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return resp, st.Stats()
	}

	first, firstStore := runDaemon()
	if len(first.Items) < 20 {
		t.Fatalf("corpus run returned %d items, want the full testdata corpus", len(first.Items))
	}
	cyclicItems := 0
	for _, it := range first.Items {
		if it.Error != "" {
			t.Fatalf("%s failed: %s", it.Name, it.Error)
		}
		if len(it.Cyclic) > 0 {
			// Loop kernels in the corpus come back with periodic results
			// instead of acyclic RS.
			cyclicItems++
			continue
		}
		if len(it.RS) == 0 {
			t.Fatalf("%s has no RS results", it.Name)
		}
	}
	if cyclicItems == 0 {
		t.Fatal("corpus contains a loop kernel but no item has cyclic results")
	}
	if first.Stats.Computed == 0 {
		t.Fatal("first pass computed nothing?")
	}
	if firstStore.Puts == 0 {
		t.Fatal("first pass persisted nothing")
	}

	second, _ := runDaemon()
	if second.Stats.Computed != 0 {
		t.Fatalf("second pass after restart computed %d results, want 0 (all L2 hits)", second.Stats.Computed)
	}
	if second.Stats.L2Hits == 0 {
		t.Fatal("second pass reports no L2 hits")
	}
	if len(second.Items) != len(first.Items) {
		t.Fatalf("item count changed across restart: %d vs %d", len(second.Items), len(first.Items))
	}
	for i, a := range first.Items {
		b := second.Items[i]
		if a.Name != b.Name {
			t.Fatalf("item %d renamed across restart: %s vs %s", i, a.Name, b.Name)
		}
		if !b.CacheHit {
			t.Fatalf("%s not served from cache on the second pass", b.Name)
		}
		if len(a.RS) != len(b.RS) {
			t.Fatalf("%s: RS type count changed", a.Name)
		}
		for typ, ra := range a.RS {
			rb := b.RS[typ]
			if rb == nil || rb.RS != ra.RS || rb.Exact != ra.Exact {
				t.Fatalf("%s/%s: results differ across restart: %+v vs %+v", a.Name, typ, ra, rb)
			}
		}
		if len(a.Cyclic) != len(b.Cyclic) {
			t.Fatalf("%s: cyclic type count changed across restart", a.Name)
		}
		for typ, ca := range a.Cyclic {
			cb := b.Cyclic[typ]
			if cb == nil || cb.PerIter != ca.PerIter || cb.Converged != ca.Converged ||
				len(cb.Windows) != len(ca.Windows) {
				t.Fatalf("%s/%s: cyclic results differ across restart: %+v vs %+v", a.Name, typ, ca, cb)
			}
		}
	}
}

func TestServiceInlineGraphsStreamAndParsePositions(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()

	good := "ddg \"tiny\"\nnode a op=load lat=2 writes=float\nnode b op=use lat=1\nedge a b flow float\n"
	bad := "ddg \"broken\"\nnode a op=load lat=oops writes=float\n"
	req := &client.AnalyzeRequest{
		Graphs: []client.GraphInput{
			{Name: "g0", DDG: good},
			{Name: "g1", DDG: bad},
			{DDG: good}, // unnamed: falls back to the parsed ddg name
		},
		Options: client.AnalyzeOptions{Method: "bb", Witness: true},
	}

	var items []*client.Item
	stats, err := c.AnalyzeStream(context.Background(), req, func(it *client.Item) error {
		items = append(items, it)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("stream out of order: item %d has index %d", i, it.Index)
		}
	}
	if items[0].Name != "g0" || items[0].Error != "" {
		t.Fatalf("good graph failed: %+v", items[0])
	}
	rs := items[0].RS["float"]
	if rs == nil || rs.RS != 1 || !rs.Exact {
		t.Fatalf("tiny graph RS_float: %+v, want exact 1", rs)
	}
	if len(rs.Witness) == 0 {
		t.Fatal("witness requested but absent")
	}
	if got := items[1]; got.Error == "" || got.ErrorLine != 2 || got.ErrorCol == 0 {
		t.Fatalf("parse failure not located: %+v", got)
	} else if !strings.Contains(got.Error, "line 2") {
		t.Fatalf("parse error lacks position: %q", got.Error)
	}
	if items[2].Name != "tiny" {
		t.Fatalf("unnamed graph not named from its ddg directive: %q", items[2].Name)
	}
	// Structural twins within one request: the third graph is the first one
	// again, so at most one computation per type ran.
	if stats.Computed > 1 {
		t.Fatalf("twin graphs computed separately: %+v", stats)
	}
}

// TestServiceInlineLoopKernel: a cyclic DDG posted inline comes back with
// periodic results — windows, per-iteration delta, and (with certify on) the
// exact periodic MILP certificate — and a malformed loop fails cleanly.
func TestServiceInlineLoopKernel(t *testing.T) {
	_, c, done := newTestServer(t, Config{})
	defer done()

	loop := "ddg \"rec\" loop\nnode a op=mul lat=2 writes=float\nnode b op=add lat=1 writes=float\n" +
		"edge a b flow float\nedge b a flow float dist=1\n"
	zeroCycle := "ddg \"bad\" loop\nnode a op=x lat=1 writes=int\nedge a a flow int\n"
	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Graphs: []client.GraphInput{
			{Name: "l0", DDG: loop},
			{Name: "l1", DDG: zeroCycle},
		},
		Options: client.AnalyzeOptions{
			Method: "bb",
			Cyclic: &client.CyclicSpec{Certify: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 {
		t.Fatalf("got %d items, want 2", len(resp.Items))
	}
	it := resp.Items[0]
	if it.Error != "" {
		t.Fatalf("loop kernel failed: %s", it.Error)
	}
	if it.Nodes != 2 || it.Edges != 2 {
		t.Fatalf("loop shape lost on the wire: %d nodes, %d edges", it.Nodes, it.Edges)
	}
	if len(it.RS) != 0 {
		t.Fatalf("loop item carries acyclic RS results: %+v", it.RS)
	}
	out := it.Cyclic["float"]
	if out == nil || len(out.Windows) == 0 || !out.Converged || !out.Exact {
		t.Fatalf("cyclic outcome incomplete: %+v", out)
	}
	if out.Periodic == nil || !out.Periodic.Exact || out.Periodic.RS < 1 {
		t.Fatalf("certify requested but periodic certificate missing: %+v", out.Periodic)
	}
	if got := resp.Items[1]; got.Error == "" || !strings.Contains(got.Error, "zero-distance") {
		t.Fatalf("zero-distance cycle accepted: %+v", got)
	}
}

func TestServiceReduce(t *testing.T) {
	_, c, done := newTestServer(t, Config{CorpusRoot: corpusRoot})
	defer done()
	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus: []string{"superscalar-spec-swim.ddg"},
		Options: client.AnalyzeOptions{
			Method: "bb",
			Types:  []string{"float"},
			Reduce: &client.ReduceSpec{Budget: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 1 || resp.Items[0].Error != "" {
		t.Fatalf("unexpected response: %+v", resp.Items)
	}
	it := resp.Items[0]
	if it.RS["float"] == nil || it.RS["float"].RS <= 3 {
		t.Skipf("kernel saturation %v not above budget; reduction not exercised", it.RS["float"])
	}
	red := it.Reductions["float"]
	if red == nil {
		t.Fatal("no reduction returned")
	}
	if !red.Spill {
		if red.RS > 3 {
			t.Fatalf("reduction above budget: %d", red.RS)
		}
		if len(red.Arcs) == 0 || red.DDG == "" {
			t.Fatalf("reduction missing arcs or extended DDG: %+v", red)
		}
	}
}

func TestServiceAdmissionControl(t *testing.T) {
	s, c, done := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, CorpusRoot: corpusRoot})
	defer done()

	// Occupy the only execution slot and the only queue seat directly.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- s.adm.acquire(context.Background()) }()
	// Wait until the second acquire is parked in the queue.
	for i := 0; ; i++ {
		if q, _ := s.adm.depth(); q == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("queued acquire never parked")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus:  []string{"superscalar-fig2.ddg"},
		Options: client.AnalyzeOptions{},
	})
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("saturated server did not shed: %v", err)
	}

	// Free the slot: the parked acquire gets it, then both release and the
	// server serves again.
	s.adm.release()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	s.adm.release()
	if _, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus: []string{"superscalar-fig2.ddg"},
	}); err != nil {
		t.Fatalf("server did not recover after release: %v", err)
	}
}

// TestServiceConcurrentCancellation exercises the race surface the
// acceptance criteria name: concurrent submissions, some of which cancel
// mid-flight, over one shared engine and store.
func TestServiceConcurrentCancellation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, c, done := newTestServer(t, Config{Store: st, CorpusRoot: corpusRoot, MaxQueue: 128})
	defer done()

	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				// A third of the submissions abandon the request mid-flight.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i)*time.Millisecond)
				defer cancel()
			}
			req := &client.AnalyzeRequest{
				Corpus:  []string{"."},
				Options: client.AnalyzeOptions{Method: "bb"},
			}
			if _, err := c.Analyze(ctx, req); err != nil && ctx.Err() == nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// The daemon must still serve cleanly after the storm.
	resp, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus:  []string{"."},
		Options: client.AnalyzeOptions{Method: "bb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range resp.Items {
		if it.Error != "" {
			t.Fatalf("%s failed after cancellation storm: %s", it.Name, it.Error)
		}
	}
}

func TestServiceHealthDrainAndMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, c, done := newTestServer(t, Config{Store: st, CorpusRoot: corpusRoot})
	defer done()

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Store {
		t.Fatalf("health: %+v", h)
	}

	if _, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus:  []string{"superscalar-fig2.ddg"},
		Options: client.AnalyzeOptions{Method: "ilp"},
	}); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"regsat_queue_depth 0",
		"regsat_requests_total",
		"regsat_rs_computed_total",
		"regsat_store_puts_total",
		"regsat_interner_resident_bytes",
		"regsat_solver_solves_total",
	} {
		if !strings.Contains(metrics, key) {
			t.Fatalf("metrics missing %q:\n%s", key, metrics)
		}
	}
	if strings.Contains(metrics, "regsat_solver_solves_total 0") {
		t.Fatal("ilp request did not feed the solver aggregate")
	}

	s.SetDraining(true)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("draining health did not 503")
	}
	if _, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus: []string{"superscalar-fig2.ddg"},
	}); err == nil {
		t.Fatal("draining server accepted work")
	}
	s.SetDraining(false)
}

func TestServiceRequestValidation(t *testing.T) {
	_, c, done := newTestServer(t, Config{}) // no corpus root
	defer done()
	cases := []*client.AnalyzeRequest{
		{},                          // no inputs
		{Corpus: []string{"x.ddg"}}, // corpus disabled
		{Graphs: []client.GraphInput{{DDG: "ddg \"x\""}}, // bad enum
			Options: client.AnalyzeOptions{Method: "quantum"}},
		{Graphs: []client.GraphInput{{DDG: "ddg \"x\""}},
			Options: client.AnalyzeOptions{Method: "ilp", Solver: client.SolverOptions{Backend: "nope"}}},
		{Graphs: []client.GraphInput{{DDG: "ddg \"x\""}},
			Options: client.AnalyzeOptions{Reduce: &client.ReduceSpec{Budget: 0}}},
	}
	for i, req := range cases {
		if _, err := c.Analyze(context.Background(), req); err == nil {
			t.Fatalf("case %d: bad request accepted", i)
		} else if strings.Contains(err.Error(), "500") {
			t.Fatalf("case %d: validation leaked a 500: %v", i, err)
		}
	}
}

func TestServiceCorpusEscapeBlocked(t *testing.T) {
	_, c, done := newTestServer(t, Config{CorpusRoot: corpusRoot + "/.."})
	defer done()
	// ".." pins to the root, so this resolves inside the tree (the parent
	// of testdata holds no .ddg files → a clean 400, not an escape).
	_, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		Corpus: []string{"../../../../etc"},
	})
	if err == nil {
		t.Fatal("escaping corpus reference accepted")
	}
	if !strings.Contains(err.Error(), "400") {
		t.Fatalf("want a 400 for the pinned-but-missing path, got: %v", err)
	}
}
