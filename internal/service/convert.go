package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"regsat/client"
	"regsat/internal/batch"
	"regsat/internal/cyclic"
	"regsat/internal/ddg"
	"regsat/internal/reduce"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

// batchOptions maps the wire options onto the batch engine's. Unknown
// enumeration values are request errors (400), not item errors: they mean
// the whole request is malformed.
func (s *Server) batchOptions(o client.AnalyzeOptions) (batch.Options, error) {
	var rsOpts rs.Options
	switch o.Method {
	case "", "greedy":
		rsOpts.Method = rs.MethodGreedy
	case "bb":
		rsOpts.Method = rs.MethodExactBB
	case "ilp":
		rsOpts.Method = rs.MethodExactILP
		rsOpts.ApplyReductions = true
	default:
		return batch.Options{}, fmt.Errorf("unknown method %q (want greedy, bb, or ilp)", o.Method)
	}
	rsOpts.MaxLeaves = o.MaxLeaves
	rsOpts.SkipWitness = !o.Witness
	rsOpts.Solver = wireSolver(o.Solver)
	if o.Solver.Backend != "" {
		if _, err := solver.Get(o.Solver.Backend); err != nil {
			return batch.Options{}, err
		}
	}

	var types []ddg.RegType
	for _, t := range o.Types {
		types = append(types, ddg.RegType(t))
	}

	opts := batch.Options{
		Parallel: s.cfg.Workers,
		RS:       rsOpts,
		Types:    types,
	}
	if o.Cyclic != nil {
		if o.Cyclic.MaxWindow < 0 {
			return batch.Options{}, fmt.Errorf("cyclic.maxWindow must be non-negative (got %d)", o.Cyclic.MaxWindow)
		}
		// The per-window RS options are left zero here: the engine inherits
		// them from the request's RS options (batch.New).
		opts.Cyclic = cyclic.Options{
			MaxWindow: o.Cyclic.MaxWindow,
			Stable:    o.Cyclic.Stable,
			Certify:   o.Cyclic.Certify,
		}
	}
	if o.Reduce != nil {
		if o.Reduce.Budget <= 0 {
			return batch.Options{}, fmt.Errorf("reduce.budget must be positive (got %d)", o.Reduce.Budget)
		}
		spec, err := reduceSpec(o.Reduce, rsOpts.Solver)
		if err != nil {
			return batch.Options{}, err
		}
		opts.Reduce = spec
	}
	return opts, nil
}

func wireSolver(o client.SolverOptions) solver.Options {
	return solver.Options{
		Backend:   o.Backend,
		MaxNodes:  o.MaxNodes,
		TimeLimit: time.Duration(o.TimeLimitMs) * time.Millisecond,
		Parallel:  o.Parallel,
	}
}

// reduceSpec maps the wire reduction request onto a batch.ReduceSpec whose
// Key makes results memoizable.
func reduceSpec(r *client.ReduceSpec, solverOpts solver.Options) (*batch.ReduceSpec, error) {
	switch r.Method {
	case "", "heuristic":
		return &batch.ReduceSpec{Budget: r.Budget, Run: batch.HeuristicReduce, Key: "heuristic"}, nil
	case "exact":
		return &batch.ReduceSpec{
			Budget: r.Budget,
			Run: func(ctx context.Context, g *ddg.Graph, t ddg.RegType, budget int) (*reduce.Result, error) {
				return reduce.ExactCombinatorial(ctx, g, t, budget, reduce.ExactOptions{})
			},
			Key: "exact",
		}, nil
	case "ilp":
		ilp := reduce.ILPOptions{ApplyReductions: true, GuaranteeDAG: true, Solver: solverOpts}
		return &batch.ReduceSpec{
			Budget: r.Budget,
			Run: func(ctx context.Context, g *ddg.Graph, t ddg.RegType, budget int) (*reduce.Result, error) {
				return reduce.ExactILP(ctx, g, t, budget, ilp)
			},
			Key: "ilp|" + solverOpts.Key(),
		}, nil
	default:
		return nil, fmt.Errorf("unknown reduce method %q (want heuristic, exact, or ilp)", r.Method)
	}
}

// buildSource assembles the request's input stream: inline graphs first
// (parse and finalize failures become per-item errors carrying the parse
// position), then corpus references resolved under the configured root.
func (s *Server) buildSource(req *client.AnalyzeRequest) (batch.Source, error) {
	var sources []batch.Source
	if len(req.Graphs) > 0 {
		items := make([]batch.Item, len(req.Graphs))
		for i, gi := range req.Graphs {
			items[i] = inlineItem(i, gi)
		}
		sources = append(sources, batch.Items(items...))
	}
	if len(req.Corpus) > 0 {
		if s.cfg.CorpusRoot == "" {
			return nil, errors.New("corpus references are disabled on this server (no corpus root configured)")
		}
		root, err := filepath.Abs(s.cfg.CorpusRoot)
		if err != nil {
			return nil, err
		}
		paths := make([]string, len(req.Corpus))
		for i, ref := range req.Corpus {
			// Clean("/"+ref) pins the reference under the root: ".." cannot
			// climb above "/", so no reference escapes the corpus tree.
			paths[i] = filepath.Join(root, filepath.Clean("/"+ref))
		}
		src, err := batch.Paths(paths...)
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
	}
	return batch.Concat(sources...), nil
}

// inlineItem parses one inline graph into a batch item.
func inlineItem(i int, gi client.GraphInput) batch.Item {
	name := gi.Name
	fallback := func(parsed string) string {
		switch {
		case name != "":
			return name
		case parsed != "":
			return parsed
		default:
			return fmt.Sprintf("graph[%d]", i)
		}
	}
	if cyclic.Detect(gi.DDG) {
		l, err := cyclic.ParseString(gi.DDG)
		if err != nil {
			return batch.Item{Name: fallback(""), Err: err}
		}
		if err := l.Validate(); err != nil {
			return batch.Item{Name: fallback(l.Name), Err: err}
		}
		return batch.Item{Name: fallback(l.Name), Loop: l}
	}
	g, err := ddg.ParseString(gi.DDG)
	if err != nil {
		return batch.Item{Name: fallback(""), Err: err}
	}
	if err := g.Finalize(); err != nil {
		return batch.Item{Name: fallback(g.Name), Err: err}
	}
	return batch.Item{Name: fallback(g.Name), Graph: g}
}

// itemToWire converts one batch result, folding its solver stats into the
// server aggregate on the way out.
func (s *Server) itemToWire(res batch.Result, withWitness, wantDDG bool) client.Item {
	s.items.Add(1)
	switch {
	case s.cluster != nil && res.Loop != nil:
		s.cluster.countItem(res.Loop.Fingerprint())
	case s.cluster != nil && res.Graph != nil:
		s.cluster.countItem(batch.Fingerprint(res.Graph))
	}
	item := client.Item{
		Index:     res.Index,
		Name:      res.Name,
		CacheHit:  res.CacheHit,
		ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
	}
	if res.Err != nil {
		s.itemErrors.Add(1)
		item.Error = res.Err.Error()
		var perr *ddg.ParseError
		if errors.As(res.Err, &perr) {
			item.ErrorLine, item.ErrorCol = perr.Line, perr.Col
		}
		return item
	}
	if res.Loop != nil {
		item.Nodes = len(res.Loop.Nodes())
		item.Edges = len(res.Loop.Edges())
		if len(res.Cyclic) > 0 {
			item.Cyclic = make(map[string]*client.CyclicOutcome, len(res.Cyclic))
			for t, r := range res.Cyclic {
				item.Cyclic[string(t)] = cyclicToWire(r)
			}
		}
		return item
	}
	g := res.Graph
	item.Nodes = g.NumNodes()
	item.Edges = g.NumEdges()
	item.CriticalPath = g.CriticalPath()
	if len(res.RS) > 0 {
		item.RS = make(map[string]*client.RSOutcome, len(res.RS))
		for t, r := range res.RS {
			item.RS[string(t)] = s.rsToWire(g, r, withWitness, res.ComputedRS[t])
		}
	}
	if len(res.Reductions) > 0 {
		item.Reductions = make(map[string]*client.ReduceOutcome, len(res.Reductions))
		for t, r := range res.Reductions {
			item.Reductions[string(t)] = s.reduceToWire(r, wantDDG, res.ComputedReductions[t])
		}
	}
	return item
}

// cyclicToWire converts one periodic loop result.
func cyclicToWire(r *cyclic.Result) *client.CyclicOutcome {
	out := &client.CyclicOutcome{
		Windows:   r.Windows,
		PerIter:   r.PerIter,
		Converged: r.Converged,
		Window:    r.Window,
		Slope:     r.Slope,
		Exact:     r.Exact,
	}
	if p := r.Periodic; p != nil {
		out.Periodic = &client.PeriodicOutcome{
			II:         p.II,
			RS:         p.RS,
			Exact:      p.Exact,
			UpperBound: p.UpperBound,
			Jmax:       p.Jmax,
		}
	}
	return out
}

// rsToWire converts one saturation result; computed reports whether this
// request ran the underlying solve (cache hits must not re-feed their
// historical stats into the server aggregate).
func (s *Server) rsToWire(g *ddg.Graph, r *rs.Result, withWitness, computed bool) *client.RSOutcome {
	out := &client.RSOutcome{RS: r.RS, Exact: r.Exact}
	for _, id := range r.Antichain {
		out.Antichain = append(out.Antichain, g.Node(id).Name)
	}
	if !r.Exact {
		if r.BBStats != nil && r.BBStats.Capped && r.BBStats.UpperBound > r.RS {
			out.UpperBound = r.BBStats.UpperBound
		}
		if r.ILPUpperBound > r.RS {
			out.UpperBound = r.ILPUpperBound
		}
	}
	if withWitness && r.Witness != nil {
		out.Witness = make(map[string]int64, g.NumNodes())
		for u := 0; u < g.NumNodes(); u++ {
			if u == g.Bottom() {
				continue
			}
			out.Witness[g.Node(u).Name] = r.Witness.Times[u]
		}
	}
	if r.ILP != nil {
		out.ILP = &client.ILPModelInfo{
			Vars:            r.ILP.Vars,
			IntVars:         r.ILP.IntVars,
			Constrs:         r.ILP.Constrs,
			RedundantArcs:   r.ILP.RedundantArcs,
			NeverAlivePairs: r.ILP.NeverAlivePairs,
		}
	}
	if r.BBStats != nil {
		out.BB = &client.BBInfo{
			Leaves:     r.BBStats.Leaves,
			Pruned:     r.BBStats.Pruned,
			Capped:     r.BBStats.Capped,
			UpperBound: r.BBStats.UpperBound,
		}
	}
	if r.SolverStats != nil {
		if computed {
			s.recordSolve(r.SolverStats)
		}
		out.SolverStats = solverToWire(r.SolverStats)
	}
	return out
}

func (s *Server) reduceToWire(r *reduce.Result, wantDDG, computed bool) *client.ReduceOutcome {
	out := &client.ReduceOutcome{
		RS:       r.RS,
		Spill:    r.Spill,
		Exact:    r.Exact,
		CPBefore: r.CPBefore,
		CPAfter:  r.CPAfter,
	}
	for _, a := range r.Arcs {
		out.Arcs = append(out.Arcs, client.Arc{
			From:    r.Graph.Node(a.From).Name,
			To:      r.Graph.Node(a.To).Name,
			Latency: a.Latency,
		})
	}
	if wantDDG && !r.Spill {
		out.DDG = r.Graph.Format()
	}
	if r.SolverStats != nil && computed {
		s.recordSolve(r.SolverStats)
	}
	return out
}

func solverToWire(st *solver.Stats) *client.SolverStats {
	return &client.SolverStats{
		Nodes:               st.Nodes,
		SimplexIters:        st.SimplexIters,
		WarmStarts:          st.WarmStarts,
		ColdStarts:          st.ColdStarts,
		Fallbacks:           st.Fallbacks,
		Incumbents:          st.Incumbents,
		Workers:             st.Workers,
		DurationNs:          int64(st.Duration),
		PresolveRows:        st.PresolveRows,
		PresolveCols:        st.PresolveCols,
		PresolveTightenings: st.PresolveTightenings,
		CutsAdded:           st.CutsAdded,
		CutsActive:          st.CutsActive,
		BranchProbes:        st.BranchProbes,
		ReliableVars:        st.ReliableVars,
		BlandIters:          st.BlandIters,
	}
}
