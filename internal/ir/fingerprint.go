package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"regsat/internal/ddg"
)

// Fingerprint returns a structural hash of the graph: two graphs with the
// same fingerprint have identical machine kind, node count, per-node
// latencies, read/write offsets and written types, and identical edge lists
// over the same node IDs. Node and graph *names* are deliberately excluded —
// no analysis artifact depends on them — so repeated graphs that differ only
// in labeling (e.g. the same random DAG emitted under two seeds, or one
// kernel loaded from two files) intern to one snapshot.
//
// The encoding walks nodes by ID and edges in stored order, so it is
// deterministic for a given graph; structurally equal graphs built with a
// different edge insertion order may hash differently, which only costs a
// missed sharing opportunity, never a wrong one.
func Fingerprint(g *ddg.Graph) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(g.Machine))
	writeInt(int64(g.NumNodes()))
	writeInt(int64(g.Bottom()))
	for _, n := range g.Nodes() {
		writeInt(n.Latency)
		writeInt(n.DelayR)
		types := make([]string, 0, len(n.Writes))
		for t := range n.Writes {
			types = append(types, string(t))
		}
		sort.Strings(types)
		writeInt(int64(len(types)))
		for _, t := range types {
			h.Write([]byte(t))
			h.Write([]byte{0})
			writeInt(n.Writes[ddg.RegType(t)])
		}
	}
	writeInt(int64(g.NumEdges()))
	for _, e := range g.Edges() {
		writeInt(int64(e.From))
		writeInt(int64(e.To))
		writeInt(e.Latency)
		writeInt(int64(e.Kind))
		h.Write([]byte(e.Type))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
