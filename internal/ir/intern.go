package ir

import (
	"container/list"
	"sync"
	"sync/atomic"

	"regsat/internal/ddg"
)

// DefaultInternCapacity bounds the process-wide snapshot cache.
const DefaultInternCapacity = 256

// interner is a bounded LRU of snapshots keyed by structural fingerprint.
// Snapshots are immutable, so sharing one across goroutines (and across
// structurally identical graphs, after rebinding) is always safe.
type interner struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	bytes   int64      // estimated resident bytes of cached snapshots

	hits, misses, evictions atomic.Int64
}

var global = &interner{
	cap:     DefaultInternCapacity,
	entries: make(map[string]*list.Element),
	order:   list.New(),
}

// Intern returns the snapshot of g, building it on first use and serving the
// cached artifact on every structurally identical graph afterwards. A hit on
// a *different* graph with the same fingerprint returns a cheap rebound copy
// (shared artifacts, caller's G pointer), so diagnostics and witness
// schedules always carry the caller's node names.
//
// Every layer that needs the analysis substrate goes through here: rs, the
// reduction searches, the batch memo, and the experiment harnesses all key
// off the same interned artifact instead of recomputing it.
func Intern(g *ddg.Graph) (*Snapshot, error) {
	return InternFingerprint(g, "")
}

// InternFingerprint is Intern with a precomputed fingerprint ("" computes
// it), saving the hash for callers — the batch memo — that already
// fingerprinted the graph for their own keys.
func InternFingerprint(g *ddg.Graph, fp string) (*Snapshot, error) {
	if fp == "" {
		fp = Fingerprint(g)
	}
	if s := global.get(fp); s != nil {
		global.hits.Add(1)
		return s.rebind(g), nil
	}
	global.misses.Add(1)
	s, err := build(g, fp)
	if err != nil {
		return nil, err
	}
	global.put(s)
	return s, nil
}

func (in *interner) get(fp string) *Snapshot {
	in.mu.Lock()
	defer in.mu.Unlock()
	el, ok := in.entries[fp]
	if !ok {
		return nil
	}
	in.order.MoveToFront(el)
	return el.Value.(*Snapshot)
}

func (in *interner) put(s *Snapshot) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.entries[s.Fingerprint]; ok {
		return // another goroutine built it first; keep the incumbent
	}
	in.entries[s.Fingerprint] = in.order.PushFront(s)
	in.bytes += s.MemBytes()
	in.evictOverflowLocked()
}

// evictOverflowLocked drops least-recently-used snapshots until the cache
// fits its capacity, maintaining the eviction and resident-byte counters.
func (in *interner) evictOverflowLocked() {
	for len(in.entries) > in.cap {
		oldest := in.order.Back()
		victim := oldest.Value.(*Snapshot)
		delete(in.entries, victim.Fingerprint)
		in.order.Remove(oldest)
		in.bytes -= victim.MemBytes()
		in.evictions.Add(1)
	}
}

// SetInternCapacity resizes the process-wide snapshot cache (minimum 1),
// evicting least-recently-used snapshots if the new capacity is smaller.
// Long-running services tuning memory against graph sizes call this once at
// startup; snapshots handed out earlier stay valid — eviction only drops
// the cache's own reference.
func SetInternCapacity(n int) {
	if n < 1 {
		n = 1
	}
	global.mu.Lock()
	defer global.mu.Unlock()
	global.cap = n
	global.evictOverflowLocked()
}

// CacheStats reports the process-wide interner behavior.
type CacheStats struct {
	// Hits counts Intern calls served from the cache; Misses counts
	// snapshots actually built.
	Hits, Misses int64
	// Evictions counts snapshots dropped by the LRU policy (capacity
	// overflow or a SetInternCapacity shrink).
	Evictions int64
	// Entries is the current cache population.
	Entries int
	// ResidentBytes estimates the heap bytes held by the cached snapshots
	// (the sum of Snapshot.MemBytes over the population).
	ResidentBytes int64
}

// Stats returns the interner's cumulative hit/miss/eviction counts, its
// population, and the estimated resident bytes.
func Stats() CacheStats {
	global.mu.Lock()
	n := len(global.entries)
	bytes := global.bytes
	global.mu.Unlock()
	return CacheStats{
		Hits:          global.hits.Load(),
		Misses:        global.misses.Load(),
		Evictions:     global.evictions.Load(),
		Entries:       n,
		ResidentBytes: bytes,
	}
}
