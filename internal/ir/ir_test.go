package ir

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"regsat/internal/ddg"
)

// isLoopDDG reports whether a corpus file's header carries the `loop` flag:
// cyclic loop kernels do not parse as flat DDGs and are covered by
// internal/cyclic's own corpus test. (Inlined here because internal/cyclic
// depends on this package.)
func isLoopDDG(text string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "ddg") {
			return false
		}
		for _, f := range strings.Fields(line)[1:] {
			if f == "loop" {
				return true
			}
		}
		return false
	}
	return false
}

func loadCorpus(t testing.TB) []*ddg.Graph {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ddg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus under ../../testdata")
	}
	var out []*ddg.Graph
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if isLoopDDG(string(raw)) {
			continue
		}
		g, err := ddg.ParseString(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := g.Finalize(); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		out = append(out, g)
	}
	return out
}

// TestSnapshotMatchesDigraph checks every snapshot artifact against a fresh
// recomputation from the mutable digraph across the whole corpus.
func TestSnapshotMatchesDigraph(t *testing.T) {
	for _, g := range loadCorpus(t) {
		snap, err := Build(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		dg := g.ToDigraph()
		if snap.N != g.NumNodes() {
			t.Fatalf("%s: N=%d != %d", g.Name, snap.N, g.NumNodes())
		}
		// Topological order: valid positions for every edge.
		for _, e := range g.Edges() {
			if snap.TopoPos[e.From] >= snap.TopoPos[e.To] {
				t.Fatalf("%s: topo order violates edge %d→%d", g.Name, e.From, e.To)
			}
		}
		// All-pairs longest paths.
		ap, err := dg.LongestAllPairs()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < snap.N; u++ {
			for v := 0; v < snap.N; v++ {
				if ap.D[u][v] != snap.AP.D[u][v] {
					t.Fatalf("%s: AP(%d,%d) %d != %d", g.Name, u, v, snap.AP.D[u][v], ap.D[u][v])
				}
			}
		}
		// Closure vs reachability, and critical path.
		cl, err := dg.TransitiveClosure()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < snap.N; u++ {
			for v := 0; v < snap.N; v++ {
				if cl.Reaches(u, v) != snap.Reaches(u, v) {
					t.Fatalf("%s: closure(%d,%d) mismatch", g.Name, u, v)
				}
			}
		}
		if cp := g.CriticalPath(); cp != snap.CP {
			t.Fatalf("%s: CP %d != %d", g.Name, snap.CP, cp)
		}
		// CSR adjacency covers exactly the edge multiset, both directions.
		fwdCount, revCount := 0, 0
		for u := 0; u < snap.N; u++ {
			dst, wt := snap.Fwd.Row(u)
			fwdCount += len(dst)
			for i, v := range dst {
				if !hasEdge(g, u, int(v), wt[i]) {
					t.Fatalf("%s: Fwd edge %d→%d/%d not in graph", g.Name, u, v, wt[i])
				}
			}
			src, wtr := snap.Rev.Row(u)
			revCount += len(src)
			for i, v := range src {
				if !hasEdge(g, int(v), u, wtr[i]) {
					t.Fatalf("%s: Rev edge %d→%d/%d not in graph", g.Name, v, u, wtr[i])
				}
			}
		}
		if fwdCount != g.NumEdges() || revCount != g.NumEdges() {
			t.Fatalf("%s: CSR edge counts %d/%d != %d", g.Name, fwdCount, revCount, g.NumEdges())
		}
		// Type tables vs the direct graph scans.
		for _, typ := range g.Types() {
			tbl := snap.Table(typ)
			if tbl == nil {
				t.Fatalf("%s: missing table for %s", g.Name, typ)
			}
			wantVals := g.Values(typ)
			if len(tbl.Values) != len(wantVals) {
				t.Fatalf("%s/%s: %d values != %d", g.Name, typ, len(tbl.Values), len(wantVals))
			}
			for i, u := range wantVals {
				if tbl.Values[i] != u || tbl.Index[u] != i {
					t.Fatalf("%s/%s: value table mismatch at %d", g.Name, typ, i)
				}
				cons := g.Cons(u, typ)
				if len(cons) != len(tbl.Cons[i]) {
					t.Fatalf("%s/%s: consumer count mismatch for %d", g.Name, typ, u)
				}
				for j := range cons {
					if cons[j] != tbl.Cons[i][j] {
						t.Fatalf("%s/%s: consumers of %d differ", g.Name, typ, u)
					}
				}
				if tbl.DelayW[i] != g.Node(u).DelayW(typ) {
					t.Fatalf("%s/%s: δw mismatch for %d", g.Name, typ, u)
				}
				if len(tbl.PKill[i]) == 0 || len(tbl.PKill[i]) > len(cons) {
					t.Fatalf("%s/%s: pkill(%d) has %d entries for %d consumers",
						g.Name, typ, u, len(tbl.PKill[i]), len(cons))
				}
			}
		}
		// Digraph round-trip preserves edge indices.
		rt := snap.Digraph()
		if rt.M() != g.NumEdges() {
			t.Fatalf("%s: Digraph round-trip lost edges", g.Name)
		}
		for i, e := range g.Edges() {
			ge := rt.Edge(i)
			if ge.From != e.From || ge.To != e.To || ge.Weight != e.Latency {
				t.Fatalf("%s: Digraph edge %d differs", g.Name, i)
			}
		}
	}
}

func hasEdge(g *ddg.Graph, from, to int, w int64) bool {
	for _, e := range g.Edges() {
		if e.From == from && e.To == to && e.Latency == w {
			return true
		}
	}
	return false
}

// TestInternSharesAndRebinds checks the interner contract: one build per
// structure, artifact sharing across structural twins, and G rebinding so a
// twin keeps its own names.
func TestInternSharesAndRebinds(t *testing.T) {
	g1 := ddg.RandomGraph(rand.New(rand.NewSource(5)), ddg.DefaultRandomParams(10))
	s1, err := Intern(g1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.G != g1 {
		t.Fatal("first intern must bind the building graph")
	}
	again, err := Intern(g1)
	if err != nil {
		t.Fatal(err)
	}
	if again != s1 {
		t.Fatal("re-interning the same graph must return the identical snapshot")
	}
	// A structural twin (same seed, different name) shares artifacts but is
	// rebound to its own graph.
	g2 := ddg.RandomGraph(rand.New(rand.NewSource(5)), ddg.DefaultRandomParams(10))
	g2.Name = "twin"
	s2, err := Intern(g2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.G != g2 {
		t.Fatalf("twin snapshot bound to %q, want %q", s2.G.Name, g2.Name)
	}
	if &s2.AP.D[0][0] != &s1.AP.D[0][0] {
		t.Fatal("twin snapshot must share the all-pairs matrix storage")
	}
	if s2.Fingerprint != s1.Fingerprint {
		t.Fatal("structural twins must share the fingerprint")
	}
	// Lazy artifacts are computed once and shared through the rebind.
	r1, err := s1.RedundantEdges()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.RedundantEdges()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("rebound snapshot recomputed the lazy reduction differently")
	}
}

// TestInternConcurrent interns the same structure from many goroutines; all
// must converge on one artifact without races.
func TestInternConcurrent(t *testing.T) {
	g := ddg.RandomGraph(rand.New(rand.NewSource(9)), ddg.DefaultRandomParams(12))
	const workers = 16
	snaps := make([]*Snapshot, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := Intern(g)
			if err != nil {
				t.Error(err)
				return
			}
			snaps[w] = s
		}(w)
	}
	wg.Wait()
	for _, s := range snaps {
		if s == nil {
			t.Fatal("intern failed")
		}
		// All goroutines must read the same underlying matrix (pointer-equal
		// rows prove a single build won the race or lost it gracefully).
		if &s.AP.D[0] == nil {
			t.Fatal("unreachable")
		}
	}
}

// TestBuildRejectsUnfinalized pins the error contract.
func TestBuildRejectsUnfinalized(t *testing.T) {
	g := ddg.New("raw", ddg.Superscalar)
	g.AddNode("a", "iadd", 1)
	if _, err := Build(g); err == nil {
		t.Fatal("Build accepted an unfinalized graph")
	}
}

// TestFingerprintIgnoresNames pins the sharing contract the interner and the
// batch memo rely on.
func TestFingerprintIgnoresNames(t *testing.T) {
	a := ddg.RandomGraph(rand.New(rand.NewSource(3)), ddg.DefaultRandomParams(9))
	b := ddg.RandomGraph(rand.New(rand.NewSource(3)), ddg.DefaultRandomParams(9))
	b.Name = "other"
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint must ignore names")
	}
	c := ddg.RandomGraph(rand.New(rand.NewSource(4)), ddg.DefaultRandomParams(9))
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("distinct structures collided")
	}
}

var sinkSnapshot *Snapshot

// BenchmarkIRBuild measures one full snapshot construction (CSR, topological
// order, closure, all-pairs longest paths, per-type tables) over the corpus.
func BenchmarkIRBuild(b *testing.B) {
	graphs := loadCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			s, err := Build(g)
			if err != nil {
				b.Fatal(err)
			}
			sinkSnapshot = s
		}
	}
}

var sinkClosure bool

// BenchmarkIRReach measures the closure-row hot read.
func BenchmarkIRReach(b *testing.B) {
	g := ddg.RandomGraph(rand.New(rand.NewSource(2)), ddg.DefaultRandomParams(64))
	snap, err := Build(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkClosure = snap.Reaches(i%snap.N, (i*7)%snap.N)
	}
}

// TestSetInternCapacity checks the resize knob evicts down to the new cap
// and keeps serving correct snapshots afterwards.
func TestSetInternCapacity(t *testing.T) {
	defer SetInternCapacity(DefaultInternCapacity)
	rng := rand.New(rand.NewSource(77))
	var gs []*ddg.Graph
	for i := 0; i < 8; i++ {
		gs = append(gs, ddg.RandomGraph(rng, ddg.DefaultRandomParams(6+i)))
	}
	for _, g := range gs {
		if _, err := Intern(g); err != nil {
			t.Fatal(err)
		}
	}
	SetInternCapacity(2)
	if n := Stats().Entries; n > 2 {
		t.Fatalf("cache holds %d entries after shrinking to 2", n)
	}
	// Evicted structures rebuild correctly.
	s, err := Intern(gs[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.N != gs[0].NumNodes() {
		t.Fatal("rebuilt snapshot inconsistent")
	}
}

func TestInternerStatsEvictionsAndBytes(t *testing.T) {
	defer SetInternCapacity(DefaultInternCapacity)
	SetInternCapacity(2)
	before := Stats()

	rng := rand.New(rand.NewSource(77))
	var gs []*ddg.Graph
	for i := 0; i < 5; i++ {
		gs = append(gs, ddg.RandomGraph(rng, ddg.DefaultRandomParams(6+i)))
	}
	for _, g := range gs {
		if _, err := Intern(g); err != nil {
			t.Fatal(err)
		}
	}
	after := Stats()
	// Five distinct structures through a 2-entry cache must evict at least
	// three snapshots.
	if d := after.Evictions - before.Evictions; d < 3 {
		t.Fatalf("evictions moved by %d, want >= 3", d)
	}
	if after.Entries > 2 {
		t.Fatalf("population %d exceeds capacity 2", after.Entries)
	}
	if after.ResidentBytes <= 0 {
		t.Fatalf("resident bytes %d, want positive", after.ResidentBytes)
	}
	// The byte gauge must match the resident snapshots exactly (insertions
	// minus evictions), so it cannot drift over a long-running service.
	var want int64
	for _, g := range gs[len(gs)-after.Entries:] {
		s, err := Intern(g)
		if err != nil {
			t.Fatal(err)
		}
		want += s.MemBytes()
	}
	if got := Stats().ResidentBytes; got != want {
		t.Fatalf("resident bytes %d, want %d (sum over population)", got, want)
	}
}
