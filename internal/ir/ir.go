// Package ir is the immutable analysis substrate every register saturation
// layer builds on: a finalized Snapshot of one data dependence DAG, computed
// once and shared by every consumer — the rs analyses (Greedy-k, the exact
// branch-and-bound, the intLP models), RS reduction, scheduling, spilling,
// interference construction, and the batch engine's memo.
//
// A Snapshot packages the artifacts those layers used to recompute
// independently from ddg.Graph.ToDigraph():
//
//   - CSR adjacency in both directions (Fwd, Rev),
//   - a deterministic topological order (Topo, TopoPos),
//   - transitive-closure reachability rows (Reach, one bitset per node),
//   - the all-pairs longest-path matrix (AP),
//   - per-register-type value/consumer/potential-killer tables (Table),
//   - a structural fingerprint (Fingerprint) for interning and memo keys.
//
// Snapshots are immutable after Build and safe for concurrent use. Intern
// maintains a bounded process-wide cache keyed by the structural fingerprint,
// so structurally identical graphs — repeated batch inputs, the same graph
// analyzed for several register types, candidate extensions revisited by a
// search — share one set of artifacts.
package ir

import (
	"fmt"
	"sort"
	"sync"

	"regsat/internal/ddg"
	"regsat/internal/graph"
)

// CSR is a compressed-sparse-row adjacency: the neighbours of node u are
// Dst[Off[u]:Off[u+1]] with edge weights Wt[Off[u]:Off[u+1]].
type CSR struct {
	Off []int32
	Dst []int32
	Wt  []int64
}

// Degree returns the number of edges stored for node u.
func (c *CSR) Degree(u int) int { return int(c.Off[u+1] - c.Off[u]) }

// Row returns the neighbour and weight slices of node u. The slices alias
// the CSR storage and must not be modified.
func (c *CSR) Row(u int) ([]int32, []int64) {
	lo, hi := c.Off[u], c.Off[u+1]
	return c.Dst[lo:hi], c.Wt[lo:hi]
}

// TypeTable is the per-register-type analysis table of a snapshot: the value
// set V_{R,t}, the consumer sets, and the potential-killer sets pkill(u^t)
// (consumers not read-dominated by another consumer; the killing date max is
// always attained by one of them).
type TypeTable struct {
	Type ddg.RegType
	// Values lists V_{R,t} (defining node IDs, increasing).
	Values []int
	// Index maps a node ID to its dense value index, -1 for non-values.
	Index []int
	// Cons[i] is Cons(Values[i]^t), increasing, without duplicates.
	Cons [][]int
	// PKill[i] ⊆ Cons[i] is the set of potential killers of value i.
	PKill [][]int
	// DelayW[i] is δw of value i (the write offset of its defining node).
	DelayW []int64
	// MultiKill counts values with more than one potential killer — the
	// branching factor driver of the exact killing-function search.
	MultiKill int
}

// lazyParts holds artifacts computed on first demand. It is shared (by
// pointer) between a snapshot and its rebound copies, so the work is done at
// most once per interned structure.
type lazyParts struct {
	redOnce   sync.Once
	redundant []int
	redErr    error
}

// Snapshot is the immutable, finalized analysis form of one DDG. All fields
// are read-only after Build; concurrent readers need no synchronization.
type Snapshot struct {
	// G is the source graph. Rebinding (see Intern) may swap this pointer for
	// a structurally identical graph; every other field depends only on the
	// structure covered by the fingerprint, never on names.
	G *ddg.Graph
	// Fingerprint is the structural hash the snapshot is interned under.
	Fingerprint string
	// N is the node count (including ⊥).
	N int
	// Fwd and Rev are the adjacency in edge direction and reversed.
	Fwd, Rev CSR
	// Topo is a deterministic topological order; TopoPos[u] is u's position.
	Topo, TopoPos []int
	// Reach holds the reflexive-transitive closure: Reach[u].Get(v) iff there
	// is a directed path u ⇝ v or u == v.
	Reach []graph.BitSet
	// AP is the all-pairs longest-path matrix of the graph.
	AP *graph.AllPairsLongest
	// CP is the critical path length (maximum over all path weights).
	CP int64
	// Types lists the register types written in the graph, sorted.
	Types []ddg.RegType

	tables map[ddg.RegType]*TypeTable
	lazy   *lazyParts
}

// Build constructs the snapshot of a finalized DDG. It errors if the graph is
// not finalized, contains a cycle, or has a value with no consumer (which
// Finalize rules out).
func Build(g *ddg.Graph) (*Snapshot, error) {
	return build(g, "")
}

func build(g *ddg.Graph, fp string) (*Snapshot, error) {
	if !g.Finalized() {
		return nil, fmt.Errorf("ir: graph %s is not finalized", g.Name)
	}
	if fp == "" {
		fp = Fingerprint(g)
	}
	dg := g.ToDigraph()
	topo, err := dg.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("ir: graph %s: %w", g.Name, err)
	}
	n := g.NumNodes()
	s := &Snapshot{
		G:           g,
		Fingerprint: fp,
		N:           n,
		Topo:        topo,
		TopoPos:     make([]int, n),
		AP:          dg.LongestAllPairsFromOrder(topo),
		Types:       g.Types(),
		tables:      map[ddg.RegType]*TypeTable{},
		lazy:        &lazyParts{},
	}
	for pos, u := range topo {
		s.TopoPos[u] = pos
	}
	s.Fwd, s.Rev = buildCSR(g)
	s.Reach = dg.TransitiveClosureFromOrder(topo).Reach
	for u := 0; u < n; u++ {
		row := s.AP.D[u]
		for v := 0; v < n; v++ {
			if d := row[v]; d != graph.NoPath && d > s.CP {
				s.CP = d
			}
		}
	}
	for _, t := range s.Types {
		tbl, err := buildTable(g, t, s.AP)
		if err != nil {
			return nil, err
		}
		s.tables[t] = tbl
	}
	return s, nil
}

func buildCSR(g *ddg.Graph) (fwd, rev CSR) {
	n := g.NumNodes()
	edges := g.Edges()
	m := len(edges)
	fwd = CSR{Off: make([]int32, n+1), Dst: make([]int32, m), Wt: make([]int64, m)}
	rev = CSR{Off: make([]int32, n+1), Dst: make([]int32, m), Wt: make([]int64, m)}
	for _, e := range edges {
		fwd.Off[e.From+1]++
		rev.Off[e.To+1]++
	}
	for u := 0; u < n; u++ {
		fwd.Off[u+1] += fwd.Off[u]
		rev.Off[u+1] += rev.Off[u]
	}
	next := make([]int32, n)
	for _, e := range edges {
		i := fwd.Off[e.From] + next[e.From]
		next[e.From]++
		fwd.Dst[i], fwd.Wt[i] = int32(e.To), e.Latency
	}
	for i := range next {
		next[i] = 0
	}
	for _, e := range edges {
		i := rev.Off[e.To] + next[e.To]
		next[e.To]++
		rev.Dst[i], rev.Wt[i] = int32(e.From), e.Latency
	}
	return fwd, rev
}

func buildTable(g *ddg.Graph, t ddg.RegType, ap *graph.AllPairsLongest) (*TypeTable, error) {
	tbl := &TypeTable{Type: t, Index: make([]int, g.NumNodes())}
	for i := range tbl.Index {
		tbl.Index[i] = -1
	}
	// One edge pass collects every value's consumer set.
	consOf := map[int]map[int]bool{}
	for _, n := range g.Nodes() {
		if n.WritesType(t) {
			consOf[n.ID] = map[int]bool{}
		}
	}
	for _, e := range g.Edges() {
		if e.Kind == ddg.Flow && e.Type == t {
			consOf[e.From][e.To] = true
		}
	}
	values := make([]int, 0, len(consOf))
	for u := range consOf {
		values = append(values, u)
	}
	sort.Ints(values)
	for i, u := range values {
		set := consOf[u]
		if len(set) == 0 {
			return nil, fmt.Errorf("ir: value %s^%s has no consumer (graph %s not finalized?)",
				g.Node(u).Name, t, g.Name)
		}
		cons := make([]int, 0, len(set))
		for v := range set {
			cons = append(cons, v)
		}
		sort.Ints(cons)
		tbl.Values = append(tbl.Values, u)
		tbl.Index[u] = i
		tbl.Cons = append(tbl.Cons, cons)
		pk := potentialKillers(g, ap, cons)
		tbl.PKill = append(tbl.PKill, pk)
		tbl.DelayW = append(tbl.DelayW, g.Node(u).DelayW(t))
		if len(pk) > 1 {
			tbl.MultiKill++
		}
	}
	return tbl, nil
}

// potentialKillers returns the consumers not read-dominated by another
// consumer. Consumer v is read-dominated by w when σ_w + δr(w) ≥ σ_v + δr(v)
// in every schedule, which holds iff lp(v, w) ≥ δr(v) − δr(w). (On
// superscalar targets, where δr = 0, this degenerates to plain reachability —
// Touati's ↓w ∩ Cons(u) = {w} rule.)
func potentialKillers(g *ddg.Graph, ap *graph.AllPairsLongest, cons []int) []int {
	var out []int
	for _, v := range cons {
		dominated := false
		for _, w := range cons {
			if w == v {
				continue
			}
			if lp := ap.Path(v, w); lp != graph.NoPath && lp >= g.Node(v).DelayR-g.Node(w).DelayR {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	// The max read is always attained somewhere, so the set can never be
	// empty (mutual domination would require a cycle).
	if len(out) == 0 {
		panic("ir: empty potential killer set")
	}
	return out
}

// Table returns the per-type table, or nil when the graph writes no value of
// that type.
func (s *Snapshot) Table(t ddg.RegType) *TypeTable { return s.tables[t] }

// Reaches reports whether there is a directed path u ⇝ v with at least one
// edge.
func (s *Snapshot) Reaches(u, v int) bool {
	return u != v && s.Reach[u].Get(v)
}

// LongestPath returns the longest path weight u ⇝ v, or graph.NoPath.
func (s *Snapshot) LongestPath(u, v int) int64 { return s.AP.D[u][v] }

// Digraph materializes a fresh mutable digraph with the snapshot's nodes and
// edges (same node IDs and edge indices as G.Edges()), for consumers that
// need to extend or reduce the graph.
func (s *Snapshot) Digraph() *graph.Digraph {
	dg := graph.New(s.N)
	for _, e := range s.G.Edges() {
		dg.AddEdge(e.From, e.To, e.Latency)
	}
	return dg
}

// RedundantEdges returns the indices (into G.Edges()) of scheduling
// constraints implied by other longest paths — the paper's first Section 3
// model optimization. Computed lazily, once per interned structure.
func (s *Snapshot) RedundantEdges() ([]int, error) {
	lz := s.lazy
	lz.redOnce.Do(func() {
		lz.redundant, lz.redErr = s.G.ToDigraph().TransitiveReduction()
	})
	return lz.redundant, lz.redErr
}

// rebind returns a shallow copy of s bound to g, a graph with the same
// fingerprint: all artifacts are shared (they depend only on the structure),
// only the G pointer differs, so names in diagnostics and witnesses stay the
// caller's.
func (s *Snapshot) rebind(g *ddg.Graph) *Snapshot {
	if s.G == g {
		return s
	}
	c := *s
	c.G = g
	return &c
}

// MemBytes estimates the resident heap bytes of the snapshot's shared
// artifacts: the CSR adjacency, topological order, transitive-closure
// bitsets, the all-pairs longest-path matrix, and the per-type value tables.
// The estimate counts the dominant backing arrays (not Go object headers),
// so long-running services can track interner memory against
// SetInternCapacity.
func (s *Snapshot) MemBytes() int64 {
	n := int64(s.N)
	b := 8 * int64(len(s.Topo)+len(s.TopoPos))
	b += 4 * int64(len(s.Fwd.Off)+len(s.Fwd.Dst)+len(s.Rev.Off)+len(s.Rev.Dst))
	b += 8 * int64(len(s.Fwd.Wt)+len(s.Rev.Wt))
	for _, r := range s.Reach {
		b += 8 * int64(len(r))
	}
	b += 8 * n * n // AP.D
	for _, tbl := range s.tables {
		b += 8 * int64(len(tbl.Values)+len(tbl.Index)+len(tbl.DelayW))
		for i := range tbl.Cons {
			b += 8 * int64(len(tbl.Cons[i]))
		}
		for i := range tbl.PKill {
			b += 8 * int64(len(tbl.PKill[i]))
		}
	}
	return b
}
