// Package benchcmp diffs two of rsbench's machine-readable BENCH.json
// summaries: per-file ns/op ratios over the corpus, solver-backend, and
// generated-family sweeps, experiment wall-time ratios for context, and a
// median-based
// regression verdict against a configurable threshold. It is the engine
// behind `rsbench -baseline old.json` and the CI bench-regression gate,
// which restores the previous main-branch BENCH.json from the actions cache
// and fails the build when the median per-file ns/op regresses beyond the
// threshold.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Run mirrors the subset of the BENCH.json schema the comparison needs
// (rsbench writes a superset; unknown fields are ignored so the schema can
// grow without breaking old baselines).
type Run struct {
	GoVersion   string       `json:"goVersion"`
	Machine     string       `json:"machine"`
	Experiments []Experiment `json:"experiments"`
	Corpus      *Sweep       `json:"corpus"`
	Solver      *Sweep       `json:"solver"`
	Families    *Sweep       `json:"families"`
	// Tracing is the tracing-disabled corpus sweep (rsbench -exp tracing):
	// per-file ns/op with the observability layer present but off, gating
	// that the disabled path stays free.
	Tracing *Sweep `json:"tracing"`
	// Load is rsload's latency section: per-quantile nanoseconds
	// (e.g. "cluster/p99") instead of per-file ns/op, but the same
	// shape, so quantile regressions gate exactly like file regressions.
	Load *Sweep `json:"load"`
	// Cyclic is the periodic loop-kernel sweep (rsbench -exp cyclic):
	// per-loop unrolled-window analysis ns/op across the cyclic generator
	// families.
	Cyclic *Sweep `json:"cyclic"`
}

// Experiment is one experiment's wall time.
type Experiment struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wallNs"`
}

// Sweep is a per-file timing section (the corpus sweep or the generated
// families sweep).
type Sweep struct {
	PerFile []File `json:"perFile"`
}

// File is one input's analysis time.
type File struct {
	Name string `json:"name"`
	NsOp int64  `json:"nsOp"`
}

// Load reads a BENCH.json file.
func Load(path string) (*Run, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	return Parse(raw)
}

// Parse decodes a BENCH.json document.
func Parse(raw []byte) (*Run, error) {
	var r Run
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchcmp: malformed BENCH.json: %w", err)
	}
	return &r, nil
}

// Delta is one comparable entry's old → new movement.
type Delta struct {
	Name  string
	OldNs int64
	NewNs int64
	// Ratio is NewNs/OldNs (1.0 = unchanged, 2.0 = twice as slow).
	Ratio float64
}

// Diff is the comparison of two runs.
type Diff struct {
	// Files are the per-file deltas across both sweeps (corpus + families),
	// slowest regression first. Only entries present in both runs with
	// positive old timings compare.
	Files []Delta
	// Experiments are wall-time deltas for the experiment sections —
	// context only, never part of the verdict (whole-experiment wall times
	// are too noisy to gate on).
	Experiments []Delta
	// OnlyOld and OnlyNew list per-file entries without a counterpart.
	OnlyOld, OnlyNew []string
	// MedianRatio is the median of Files ratios, 1.0 when nothing compares.
	MedianRatio float64
}

// Compare diffs two runs.
func Compare(old, cur *Run) *Diff {
	d := &Diff{MedianRatio: 1}
	oldFiles := collectFiles(old)
	curFiles := collectFiles(cur)
	seen := map[string]bool{}
	for name, oldNs := range oldFiles {
		newNs, ok := curFiles[name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, name)
			continue
		}
		seen[name] = true
		if oldNs <= 0 || newNs < 0 {
			continue
		}
		d.Files = append(d.Files, Delta{Name: name, OldNs: oldNs, NewNs: newNs,
			Ratio: float64(newNs) / float64(oldNs)})
	}
	for name := range curFiles {
		if !seen[name] {
			d.OnlyNew = append(d.OnlyNew, name)
		}
	}
	sort.Slice(d.Files, func(i, j int) bool {
		if d.Files[i].Ratio != d.Files[j].Ratio {
			return d.Files[i].Ratio > d.Files[j].Ratio
		}
		return d.Files[i].Name < d.Files[j].Name
	})
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	if len(d.Files) > 0 {
		ratios := make([]float64, len(d.Files))
		for i, f := range d.Files {
			ratios[i] = f.Ratio
		}
		sort.Float64s(ratios)
		if n := len(ratios); n%2 == 1 {
			d.MedianRatio = ratios[n/2]
		} else {
			d.MedianRatio = (ratios[n/2-1] + ratios[n/2]) / 2
		}
	}
	oldExps := map[string]int64{}
	for _, e := range old.Experiments {
		oldExps[e.Name] = e.WallNs
	}
	for _, e := range cur.Experiments {
		if oldNs, ok := oldExps[e.Name]; ok && oldNs > 0 {
			d.Experiments = append(d.Experiments, Delta{Name: e.Name, OldNs: oldNs,
				NewNs: e.WallNs, Ratio: float64(e.WallNs) / float64(oldNs)})
		}
	}
	sort.Slice(d.Experiments, func(i, j int) bool { return d.Experiments[i].Name < d.Experiments[j].Name })
	return d
}

// collectFiles flattens a run's per-file sections, namespacing the sweep so
// a corpus file and a generated family graph with the same name never
// collide.
func collectFiles(r *Run) map[string]int64 {
	out := map[string]int64{}
	add := func(prefix string, s *Sweep) {
		if s == nil {
			return
		}
		for _, f := range s.PerFile {
			out[prefix+f.Name] = f.NsOp
		}
	}
	add("corpus/", r.Corpus)
	add("solver/", r.Solver)
	add("families/", r.Families)
	add("tracing/", r.Tracing)
	add("load/", r.Load)
	add("cyclic/", r.Cyclic)
	return out
}

// Regressed reports whether the median per-file ns/op ratio exceeds
// 1+threshold (e.g. threshold 0.25 fails a >25% median regression). A diff
// with no comparable files never regresses — a cold cache or a renamed
// corpus must not fail the gate.
func (d *Diff) Regressed(threshold float64) bool {
	return len(d.Files) > 0 && d.MedianRatio > 1+threshold
}

// Report renders a human-readable comparison. Entries beyond 1+threshold
// are flagged; the verdict line is the last line, so CI logs end with the
// conclusion.
func (d *Diff) Report(threshold float64) string {
	var b strings.Builder
	if len(d.Files) == 0 {
		b.WriteString("benchcmp: no comparable per-file timings (cold baseline?)\n")
	} else {
		fmt.Fprintf(&b, "%-50s %12s %12s %8s\n", "FILE", "OLD ns/op", "NEW ns/op", "RATIO")
		for _, f := range d.Files {
			mark := ""
			if f.Ratio > 1+threshold {
				mark = "  << regressed"
			}
			fmt.Fprintf(&b, "%-50s %12d %12d %7.2fx%s\n", f.Name, f.OldNs, f.NewNs, f.Ratio, mark)
		}
	}
	for _, e := range d.Experiments {
		fmt.Fprintf(&b, "experiment %-39s %12d %12d %7.2fx (informational)\n", e.Name, e.OldNs, e.NewNs, e.Ratio)
	}
	if len(d.OnlyOld) > 0 {
		fmt.Fprintf(&b, "dropped since baseline: %s\n", strings.Join(d.OnlyOld, ", "))
	}
	if len(d.OnlyNew) > 0 {
		fmt.Fprintf(&b, "new since baseline: %s\n", strings.Join(d.OnlyNew, ", "))
	}
	if d.Regressed(threshold) {
		fmt.Fprintf(&b, "VERDICT: REGRESSED — median ns/op ratio %.2fx exceeds %.2fx\n", d.MedianRatio, 1+threshold)
	} else {
		fmt.Fprintf(&b, "VERDICT: ok — median ns/op ratio %.2fx (threshold %.2fx over %d files)\n",
			d.MedianRatio, 1+threshold, len(d.Files))
	}
	return b.String()
}
