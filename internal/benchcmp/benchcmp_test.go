package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func run(ns map[string]int64) *Run {
	r := &Run{Corpus: &Sweep{}}
	for name, v := range ns {
		r.Corpus.PerFile = append(r.Corpus.PerFile, File{Name: name, NsOp: v})
	}
	return r
}

// TestInjectedRegressionFlagged is the acceptance check: a uniform 2x
// slowdown must trip the 25% gate.
func TestInjectedRegressionFlagged(t *testing.T) {
	old := run(map[string]int64{"a.ddg": 1000, "b.ddg": 2000, "c.ddg": 500})
	cur := run(map[string]int64{"a.ddg": 2000, "b.ddg": 4000, "c.ddg": 1000})
	d := Compare(old, cur)
	if d.MedianRatio != 2 {
		t.Fatalf("median ratio %v, want 2", d.MedianRatio)
	}
	if !d.Regressed(0.25) {
		t.Fatal("2x regression not flagged at 25% threshold")
	}
	rep := d.Report(0.25)
	if !strings.Contains(rep, "REGRESSED") || !strings.Contains(rep, "<< regressed") {
		t.Fatalf("report lacks verdict markers:\n%s", rep)
	}
}

// TestUnchangedRunPasses is the other acceptance half: identical timings
// must pass.
func TestUnchangedRunPasses(t *testing.T) {
	old := run(map[string]int64{"a.ddg": 1000, "b.ddg": 2000})
	d := Compare(old, run(map[string]int64{"a.ddg": 1000, "b.ddg": 2000}))
	if d.MedianRatio != 1 || d.Regressed(0.25) {
		t.Fatalf("unchanged run flagged: median %v", d.MedianRatio)
	}
	if !strings.Contains(d.Report(0.25), "VERDICT: ok") {
		t.Fatal("report lacks ok verdict")
	}
}

// TestMedianIsRobustToOneOutlier: a single noisy file must not fail the
// gate — that is the point of gating on the median, not the max.
func TestMedianIsRobustToOneOutlier(t *testing.T) {
	old := run(map[string]int64{"a.ddg": 1000, "b.ddg": 1000, "c.ddg": 1000})
	cur := run(map[string]int64{"a.ddg": 5000, "b.ddg": 1000, "c.ddg": 1010})
	d := Compare(old, cur)
	if d.Regressed(0.25) {
		t.Fatalf("one outlier tripped the median gate (median %v)", d.MedianRatio)
	}
	// But a majority regression does trip it.
	cur = run(map[string]int64{"a.ddg": 5000, "b.ddg": 2000, "c.ddg": 1010})
	if !Compare(old, cur).Regressed(0.25) {
		t.Fatal("majority regression not flagged")
	}
}

func TestDisjointRunsNeverRegress(t *testing.T) {
	old := run(map[string]int64{"a.ddg": 1000})
	cur := run(map[string]int64{"z.ddg": 9000})
	d := Compare(old, cur)
	if d.Regressed(0.01) {
		t.Fatal("no comparable files must never regress")
	}
	if len(d.OnlyOld) != 1 || len(d.OnlyNew) != 1 {
		t.Fatalf("missing/added bookkeeping wrong: %v %v", d.OnlyOld, d.OnlyNew)
	}
	if !strings.Contains(d.Report(0.25), "no comparable per-file timings") {
		t.Fatal("report does not explain the empty comparison")
	}
}

func TestZeroAndNegativeTimingsSkipped(t *testing.T) {
	old := run(map[string]int64{"a.ddg": 0, "b.ddg": -5, "c.ddg": 100})
	cur := run(map[string]int64{"a.ddg": 100, "b.ddg": 100, "c.ddg": 100})
	d := Compare(old, cur)
	if len(d.Files) != 1 || d.Files[0].Name != "corpus/c.ddg" {
		t.Fatalf("invalid old timings not skipped: %+v", d.Files)
	}
}

// TestFamiliesAndCorpusNamespaced: the same file name in both sweeps must
// stay two entries.
func TestFamiliesAndCorpusNamespaced(t *testing.T) {
	old := &Run{
		Corpus:   &Sweep{PerFile: []File{{Name: "x", NsOp: 100}}},
		Families: &Sweep{PerFile: []File{{Name: "x", NsOp: 200}}},
	}
	cur := &Run{
		Corpus:   &Sweep{PerFile: []File{{Name: "x", NsOp: 100}}},
		Families: &Sweep{PerFile: []File{{Name: "x", NsOp: 800}}},
	}
	d := Compare(old, cur)
	if len(d.Files) != 2 {
		t.Fatalf("want 2 namespaced entries, got %+v", d.Files)
	}
	if d.Files[0].Name != "families/x" || d.Files[0].Ratio != 4 {
		t.Fatalf("families entry wrong: %+v", d.Files[0])
	}
}

func TestExperimentsInformationalOnly(t *testing.T) {
	old := &Run{Experiments: []Experiment{{Name: "rs", WallNs: 100}}}
	cur := &Run{Experiments: []Experiment{{Name: "rs", WallNs: 10000}}}
	d := Compare(old, cur)
	if d.Regressed(0.25) {
		t.Fatal("experiment wall times must not drive the verdict")
	}
	if len(d.Experiments) != 1 || d.Experiments[0].Ratio != 100 {
		t.Fatalf("experiment delta missing: %+v", d.Experiments)
	}
}

// TestLoadSweepNamespaced: rsload's quantile entries live under the load/
// namespace and gate like any per-file timing.
func TestLoadSweepNamespaced(t *testing.T) {
	old := &Run{Load: &Sweep{PerFile: []File{
		{Name: "cluster/p50", NsOp: 1000},
		{Name: "cluster/p99", NsOp: 5000},
	}}}
	cur := &Run{Load: &Sweep{PerFile: []File{
		{Name: "cluster/p50", NsOp: 1000},
		{Name: "cluster/p99", NsOp: 50000},
	}}}
	d := Compare(old, cur)
	if len(d.Files) != 2 {
		t.Fatalf("want 2 load entries, got %+v", d.Files)
	}
	if d.Files[0].Name != "load/cluster/p99" || d.Files[0].Ratio != 10 {
		t.Fatalf("p99 regression not ranked first: %+v", d.Files[0])
	}
	if !d.Regressed(0.25) {
		t.Fatal("a 10x p99 regression must fail the gate")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	doc := `{
		"goVersion": "go1.24.0",
		"machine": "superscalar",
		"experiments": [{"name": "rs", "wallNs": 123}],
		"corpus": {"dir": "testdata", "files": 1, "perFile": [{"name": "a.ddg", "nodes": 5, "nsOp": 42}]},
		"unknownField": {"future": true}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Corpus == nil || len(r.Corpus.PerFile) != 1 || r.Corpus.PerFile[0].NsOp != 42 {
		t.Fatalf("bad decode: %+v", r)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON must error")
	}
}
