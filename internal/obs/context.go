package obs

import "context"

type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the active span. A nil sp
// returns ctx unchanged, so callers never create a "traced but recording
// nothing" context.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the active span, or nil when the request is untraced.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's active span. On an untraced
// context it returns (ctx, nil) without allocating — this is the one call
// instrumented library code makes, and its disabled cost is a context
// lookup plus a nil check. The returned span must be ended on every path
// (the spanbalance rsvet analyzer enforces this).
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tracer.newSpan(parent.trace, parent.id, name)
	sp.SetAttr(attrs...)
	return context.WithValue(ctx, spanKey{}, sp), sp
}
