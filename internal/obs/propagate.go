package obs

import (
	"context"
	"net/http"
	"strings"
)

// HTTP carrier headers. Traceparent is the W3C Trace Context header
// (https://www.w3.org/TR/trace-context/): version "00", a 32-hex trace ID,
// a 16-hex parent span ID, and a flags byte ("01" = sampled — the only
// state this library propagates, since an unsampled trace is never
// injected). RequestIDHeader is the engine's own correlation ID: unlike a
// trace it exists on *every* request, sampled or not, so a failed forwarded
// item can always be matched across replica logs.
const (
	TraceparentHeader = "traceparent"
	RequestIDHeader   = "X-Regsat-Request-Id"
)

// FormatTraceparent renders the header value for an outgoing hop.
func FormatTraceparent(trace TraceID, span SpanID) string {
	return "00-" + string(trace) + "-" + string(span) + "-01"
}

// ParseTraceparent extracts the parent link from a header value, tolerating
// future versions per the spec (any 2-hex version, extra fields ignored).
// Malformed or all-zero IDs yield the zero Link.
func ParseTraceparent(v string) Link {
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return Link{}
	}
	version, trace, span := parts[0], parts[1], parts[2]
	if len(version) != 2 || version == "ff" || !isHex(version) {
		return Link{}
	}
	if len(trace) != 32 || !isHex(trace) || allZero(trace) {
		return Link{}
	}
	if len(span) != 16 || !isHex(span) || allZero(span) {
		return Link{}
	}
	return Link{Trace: TraceID(trace), Span: SpanID(span)}
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Inject writes the active span's traceparent onto an outgoing request's
// headers. Untraced contexts write nothing.
func Inject(ctx context.Context, h http.Header) {
	sp := FromContext(ctx)
	if sp == nil {
		return
	}
	h.Set(TraceparentHeader, FormatTraceparent(sp.trace, sp.id))
}

// Extract reads the parent link from an incoming request's headers.
func Extract(h http.Header) Link {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// NewRequestID returns a fresh request correlation ID (16 hex chars).
func NewRequestID() string { return randHex(8) }

type requestIDKey struct{}

// ContextWithRequestID attaches the request's correlation ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the correlation ID ("" when unset).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
