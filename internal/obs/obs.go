// Package obs is the engine's stdlib-only distributed tracing library: a
// span/event model shaped like W3C Trace Context (a 16-byte trace ID naming
// the whole request, an 8-byte span ID per operation, parent links forming
// the tree) with the properties a hot analysis daemon needs:
//
//   - zero-cost when off: an untraced context carries no span, StartSpan
//     returns nil, and every Span method is nil-safe, so instrumented code
//     pays one context lookup and a nil check;
//   - bounded memory always: each span's event buffer and the tracer's
//     finished-trace ring are capped, dropping (and counting) overflow
//     instead of growing;
//   - monotonic timing: span durations and event offsets come from the
//     monotonic clock (time.Time's hidden reading), so a stepped wall clock
//     never produces negative latencies;
//   - an atomic sampling knob: the sample rate can be turned up on a live
//     daemon to debug an incident and back down afterwards, without locks on
//     the request path.
//
// Propagation across processes uses the W3C `traceparent` header (see
// propagate.go), so a trace started by a cluster coordinator continues on
// the replica that owns the forwarded items, and the exported trace
// stitches spans from every replica involved.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is 16 random bytes as 32 lowercase hex characters; it names one
// end-to-end request across every process it touches.
type TraceID string

// SpanID is 8 random bytes as 16 lowercase hex characters; it names one
// operation within a trace.
type SpanID string

// NewTraceID returns a fresh random trace ID.
func NewTraceID() TraceID { return TraceID(randHex(16)) }

// NewSpanID returns a fresh random span ID.
func NewSpanID() SpanID { return SpanID(randHex(8)) }

func randHex(n int) string {
	b := make([]byte, n)
	// crypto/rand never fails on the supported platforms; a zero ID on a
	// broken one is still a valid (if colliding) identifier.
	rand.Read(b)
	return hex.EncodeToString(b)
}

// Attr is one key/value annotation on a span or event. Values are strings on
// purpose: the wire format is JSON-with-string-values everywhere, and the
// formatting cost is only paid on sampled requests.
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	if v {
		return Attr{Key: k, Value: "true"}
	}
	return Attr{Key: k, Value: "false"}
}

// itoa is strconv.FormatInt(v, 10) without the import weight on the hot
// path's inliner budget.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [20]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// EventData is one timestamped point event on a span's timeline, exported as
// one element of SpanData.Events. OffsetNs is monotonic nanoseconds since
// the span started.
type EventData struct {
	Name     string            `json:"name"`
	OffsetNs int64             `json:"offsetNs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// SpanData is the immutable export form of a finished span — exactly the
// NDJSON schema of the daemon's GET /v1/trace/{id} endpoint and the input
// of cmd/rstrace. Service names which replica produced the span, so a
// stitched cross-replica trace remains attributable.
type SpanData struct {
	TraceID       string            `json:"traceId"`
	SpanID        string            `json:"spanId"`
	Parent        string            `json:"parent,omitempty"`
	Name          string            `json:"name"`
	Service       string            `json:"service,omitempty"`
	StartUnixNs   int64             `json:"startUnixNs"`
	DurationNs    int64             `json:"durationNs"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Events        []EventData       `json:"events,omitempty"`
	DroppedEvents int64             `json:"droppedEvents,omitempty"`
}

// Span is one in-flight operation of a recorded trace. A nil *Span is the
// "not recording" state: every method is nil-safe and does nothing, so
// instrumented code never branches on whether tracing is on.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time // carries the monotonic reading

	mu      sync.Mutex
	attrs   map[string]string
	events  []EventData
	dropped int64
	ended   bool
}

// TraceID returns the span's trace ID ("" when not recording).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return ""
	}
	return s.trace
}

// ID returns the span's own ID ("" when not recording).
func (s *Span) ID() SpanID {
	if s == nil {
		return ""
	}
	return s.id
}

// Recording reports whether the span records (false for nil).
func (s *Span) Recording() bool { return s != nil }

// SetAttr annotates the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		for _, a := range attrs {
			s.attrs[a.Key] = a.Value
		}
	}
	s.mu.Unlock()
}

// Event appends a point event to the span's timeline. The buffer is bounded
// by the tracer's MaxEvents: overflow is dropped and counted, never grown —
// a pathological solve cannot turn its trace into the memory problem it was
// supposed to diagnose.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	off := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if len(s.events) >= s.tracer.maxEvents {
		s.dropped++
		return
	}
	ev := EventData{Name: name, OffsetNs: off}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	s.events = append(s.events, ev)
}

// End finishes the span and delivers it to the tracer's ring. End is
// idempotent; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		TraceID:       string(s.trace),
		SpanID:        string(s.id),
		Parent:        string(s.parent),
		Name:          s.name,
		Service:       s.tracer.service,
		StartUnixNs:   s.start.UnixNano(),
		DurationNs:    dur,
		Attrs:         s.attrs,
		Events:        s.events,
		DroppedEvents: s.dropped,
	}
	s.mu.Unlock()
	s.tracer.ring.add(data)
}

// Config configures a Tracer. The zero value is a valid tracer that never
// samples on its own but still records joined traces (incoming traceparent)
// and forced ones.
type Config struct {
	// Service names this process in exported spans (replica base URL in
	// cluster mode, "rsd" single-process, "cli" in command-line tools).
	Service string
	// SampleRate is the initial fraction of unforced root requests to trace,
	// in [0, 1]. 0 records only joined/forced traces; 1 records everything.
	SampleRate float64
	// RingTraces bounds distinct traces retained for export
	// (0 = DefaultRingTraces).
	RingTraces int
	// RingSpans bounds spans retained per trace (0 = DefaultRingSpans).
	RingSpans int
	// MaxEvents bounds the event buffer of each span (0 = DefaultMaxEvents).
	MaxEvents int
}

// Bounds used when the corresponding Config field is zero.
const (
	DefaultRingTraces = 256
	DefaultRingSpans  = 512
	DefaultMaxEvents  = 128
)

// Tracer owns sampling, span creation, and the bounded ring of finished
// traces. All methods are safe for concurrent use.
type Tracer struct {
	service   string
	maxEvents int
	ring      *ring

	// rateBits holds math.Float64bits of the sample rate; ctr drives the
	// deterministic 1-in-N sampler derived from it.
	rateBits atomic.Uint64
	ctr      atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(cfg Config) *Tracer {
	if cfg.RingTraces <= 0 {
		cfg.RingTraces = DefaultRingTraces
	}
	if cfg.RingSpans <= 0 {
		cfg.RingSpans = DefaultRingSpans
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	t := &Tracer{
		service:   cfg.Service,
		maxEvents: cfg.MaxEvents,
		ring:      newRing(cfg.RingTraces, cfg.RingSpans),
	}
	t.SetSampleRate(cfg.SampleRate)
	return t
}

// SetSampleRate atomically replaces the sampling rate (clamped to [0, 1]) —
// the live-daemon debugging knob.
func (t *Tracer) SetSampleRate(r float64) {
	if math.IsNaN(r) || r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.rateBits.Store(math.Float64bits(r))
}

// SampleRate returns the current sampling rate.
func (t *Tracer) SampleRate() float64 {
	return math.Float64frombits(t.rateBits.Load())
}

// sample is the deterministic counter sampler: rate r admits every
// round(1/r)-th unforced root request. Deterministic (no RNG on the request
// path) and exact in the long run: rate 0.25 admits precisely 1 in 4.
func (t *Tracer) sample() bool {
	r := t.SampleRate()
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	period := uint64(math.Round(1 / r))
	if period < 1 {
		period = 1
	}
	return t.ctr.Add(1)%period == 0
}

// Link is an incoming parent reference extracted from a carrier (the
// traceparent header). The zero Link means "no parent".
type Link struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the link names a parent.
func (l Link) Valid() bool { return l.Trace != "" && l.Span != "" }

// StartRequest opens the root span of one incoming request. A valid link
// joins the caller's trace unconditionally — the upstream already paid the
// sampling decision — while an unlinked request is recorded only when
// forced (the request asked for tracing explicitly) or when the sampler
// picks it. When not recording it returns ctx unchanged and a nil span.
func (t *Tracer) StartRequest(ctxIn context.Context, name string, link Link, force bool) (context.Context, *Span) {
	if t == nil {
		return ctxIn, nil
	}
	var trace TraceID
	var parent SpanID
	switch {
	case link.Valid():
		trace, parent = link.Trace, link.Span
	case force || t.sample():
		trace = NewTraceID()
	default:
		return ctxIn, nil
	}
	sp := t.newSpan(trace, parent, name)
	return ContextWithSpan(ctxIn, sp), sp
}

func (t *Tracer) newSpan(trace TraceID, parent SpanID, name string) *Span {
	return &Span{
		tracer: t,
		trace:  trace,
		id:     NewSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  map[string]string{},
	}
}

// Collect returns a copy of the finished spans of one trace, in end order
// (nil when the trace is unknown or already evicted).
func (t *Tracer) Collect(id TraceID) []SpanData {
	if t == nil {
		return nil
	}
	return t.ring.get(id)
}

// AddSpans merges externally produced spans (a forwarded sub-request's
// inline attachment) into the ring, stitching a cross-process trace into
// one exportable timeline.
func (t *Tracer) AddSpans(spans []SpanData) {
	if t == nil {
		return
	}
	for _, sp := range spans {
		if sp.TraceID != "" {
			t.ring.add(sp)
		}
	}
}

// Stats reports the ring's movement for metrics.
func (t *Tracer) Stats() RingStats {
	if t == nil {
		return RingStats{}
	}
	return t.ring.stats()
}
