package obs

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

func TestSamplingRate(t *testing.T) {
	cases := []struct {
		rate float64
		want int // sampled out of 1000 unforced root requests
	}{
		{0, 0},
		{1, 1000},
		{0.5, 500},
		{0.25, 250},
		{0.01, 10},
	}
	for _, tc := range cases {
		tr := NewTracer(Config{Service: "test", SampleRate: tc.rate})
		got := 0
		for i := 0; i < 1000; i++ {
			_, sp := tr.StartRequest(context.Background(), "req", Link{}, false)
			if sp != nil {
				got++
				sp.End()
			}
		}
		if got != tc.want {
			t.Errorf("rate %v: sampled %d of 1000, want exactly %d (counter sampler is deterministic)",
				tc.rate, got, tc.want)
		}
	}
}

func TestSampleRateKnobIsLive(t *testing.T) {
	tr := NewTracer(Config{Service: "test"})
	if _, sp := tr.StartRequest(context.Background(), "req", Link{}, false); sp != nil {
		t.Fatal("rate 0 sampled a request")
	}
	tr.SetSampleRate(1)
	if tr.SampleRate() != 1 {
		t.Fatalf("SampleRate = %v after SetSampleRate(1)", tr.SampleRate())
	}
	if _, sp := tr.StartRequest(context.Background(), "req", Link{}, false); sp == nil {
		t.Fatal("rate 1 skipped a request")
	}
	tr.SetSampleRate(-3)
	if tr.SampleRate() != 0 {
		t.Fatalf("negative rate not clamped to 0, got %v", tr.SampleRate())
	}
	tr.SetSampleRate(7)
	if tr.SampleRate() != 1 {
		t.Fatalf("rate > 1 not clamped to 1, got %v", tr.SampleRate())
	}
}

func TestForceAndLinkBypassSampling(t *testing.T) {
	tr := NewTracer(Config{Service: "test"}) // rate 0
	if _, sp := tr.StartRequest(context.Background(), "req", Link{}, true); sp == nil {
		t.Fatal("forced request not recorded at rate 0")
	}
	link := Link{Trace: NewTraceID(), Span: NewSpanID()}
	_, sp := tr.StartRequest(context.Background(), "req", link, false)
	if sp == nil {
		t.Fatal("linked request not recorded at rate 0")
	}
	if sp.TraceID() != link.Trace {
		t.Fatalf("joined trace = %s, want %s", sp.TraceID(), link.Trace)
	}
	sp.End()
	spans := tr.Collect(link.Trace)
	if len(spans) != 1 || SpanID(spans[0].Parent) != link.Span {
		t.Fatalf("joined span parent = %+v, want parent %s", spans, link.Span)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1, RingTraces: 4})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		ctx, sp := tr.StartRequest(context.Background(), "req", Link{}, false)
		_, child := StartSpan(ctx, "child")
		child.End()
		sp.End()
		ids = append(ids, sp.TraceID())
	}
	// Only the 4 most recent traces survive; the first 6 were evicted.
	for i, id := range ids {
		spans := tr.Collect(id)
		if i < 6 && spans != nil {
			t.Errorf("trace %d should have been evicted, still holds %d spans", i, len(spans))
		}
		if i >= 6 && len(spans) != 2 {
			t.Errorf("trace %d: got %d spans, want 2 (child + root)", i, len(spans))
		}
	}
	st := tr.Stats()
	if st.Traces != 4 || st.EvictedTraces != 6 {
		t.Errorf("Stats = %+v, want 4 retained / 6 evicted", st)
	}
}

func TestRingEvictionIsLRU(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1, RingTraces: 2})
	_, a := tr.StartRequest(context.Background(), "a", Link{}, false)
	a.End()
	_, b := tr.StartRequest(context.Background(), "b", Link{}, false)
	b.End()
	// Touch a so b becomes the eviction victim.
	tr.Collect(a.TraceID())
	_, c := tr.StartRequest(context.Background(), "c", Link{}, false)
	c.End()
	if tr.Collect(a.TraceID()) == nil {
		t.Error("recently read trace a was evicted")
	}
	if tr.Collect(b.TraceID()) != nil {
		t.Error("least recently used trace b survived")
	}
}

func TestPerTraceSpanCap(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1, RingSpans: 3})
	ctx, root := tr.StartRequest(context.Background(), "req", Link{}, false)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	spans := tr.Collect(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want cap of 3", len(spans))
	}
	if st := tr.Stats(); st.DroppedSpans != 3 {
		t.Fatalf("DroppedSpans = %d, want 3 (2 children + root)", st.DroppedSpans)
	}
}

func TestBoundedEvents(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1, MaxEvents: 4})
	_, sp := tr.StartRequest(context.Background(), "req", Link{}, false)
	for i := 0; i < 10; i++ {
		sp.Event("tick", Int("i", int64(i)))
	}
	sp.End()
	spans := tr.Collect(sp.TraceID())
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if got := len(spans[0].Events); got != 4 {
		t.Errorf("events = %d, want cap of 4", got)
	}
	if spans[0].DroppedEvents != 6 {
		t.Errorf("DroppedEvents = %d, want 6", spans[0].DroppedEvents)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer(Config{Service: "svc", SampleRate: 1})
	ctx, root := tr.StartRequest(context.Background(), "server.analyze", Link{}, false)
	cctx, child := StartSpan(ctx, "batch.item", Str("graph", "g1"))
	child.SetAttr(Int("nodes", 42), Bool("hit", true))
	_, grand := StartSpan(cctx, "solver.solve")
	grand.End()
	child.End()
	root.SetAttr(Str("method", "ilp"))
	root.End()

	spans := tr.Collect(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != string(root.TraceID()) {
			t.Errorf("span %s trace = %s, want %s", s.Name, s.TraceID, root.TraceID())
		}
		if s.Service != "svc" {
			t.Errorf("span %s service = %q, want svc", s.Name, s.Service)
		}
		if s.DurationNs < 0 {
			t.Errorf("span %s has negative duration %d", s.Name, s.DurationNs)
		}
	}
	if byName["batch.item"].Parent != byName["server.analyze"].SpanID {
		t.Error("child span not parented to root")
	}
	if byName["solver.solve"].Parent != byName["batch.item"].SpanID {
		t.Error("grandchild span not parented to child")
	}
	if byName["batch.item"].Attrs["nodes"] != "42" || byName["batch.item"].Attrs["hit"] != "true" {
		t.Errorf("child attrs = %v", byName["batch.item"].Attrs)
	}
	if byName["server.analyze"].Attrs["method"] != "ilp" {
		t.Errorf("root attrs = %v", byName["server.analyze"].Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	cctx, sp := StartSpan(ctx, "noop") // untraced context -> nil span
	if sp != nil {
		t.Fatal("StartSpan on untraced context returned a recording span")
	}
	if cctx != ctx {
		t.Fatal("StartSpan on untraced context should return ctx unchanged")
	}
	// None of these may panic.
	sp.SetAttr(Str("k", "v"))
	sp.Event("e")
	sp.End()
	sp.End()
	if sp.Recording() || sp.TraceID() != "" || sp.ID() != "" {
		t.Fatal("nil span should report not-recording and empty IDs")
	}
	var tr *Tracer
	if _, got := tr.StartRequest(ctx, "r", Link{}, true); got != nil {
		t.Fatal("nil tracer started a span")
	}
	tr.AddSpans([]SpanData{{TraceID: "x"}})
	if tr.Collect("x") != nil || tr.Stats() != (RingStats{}) {
		t.Fatal("nil tracer should collect nothing")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1})
	_, sp := tr.StartRequest(context.Background(), "req", Link{}, false)
	sp.End()
	sp.End()
	sp.Event("after-end") // must not land
	if spans := tr.Collect(sp.TraceID()); len(spans) != 1 || len(spans[0].Events) != 0 {
		t.Fatalf("double End / post-End event leaked: %+v", spans)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	trace, span := NewTraceID(), NewSpanID()
	v := FormatTraceparent(trace, span)
	want := fmt.Sprintf("00-%s-%s-01", trace, span)
	if v != want {
		t.Fatalf("FormatTraceparent = %q, want %q", v, want)
	}
	link := ParseTraceparent(v)
	if link.Trace != trace || link.Span != span {
		t.Fatalf("round trip lost the link: %+v", link)
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
	}
	for _, v := range bad {
		if l := ParseTraceparent(v); l.Valid() {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header: %+v", v, l)
		}
	}
	// Future version with extra fields still parses.
	if l := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !l.Valid() {
		t.Error("future-version traceparent with trailing fields rejected")
	}
}

func TestInjectExtract(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1})
	ctx, sp := tr.StartRequest(context.Background(), "req", Link{}, false)
	h := http.Header{}
	Inject(ctx, h)
	link := Extract(h)
	if link.Trace != sp.TraceID() || link.Span != sp.ID() {
		t.Fatalf("Extract(Inject(ctx)) = %+v, want trace %s span %s", link, sp.TraceID(), sp.ID())
	}
	// Untraced contexts inject nothing.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("untraced context injected a traceparent")
	}
	if Extract(h2).Valid() {
		t.Fatal("empty header extracted a link")
	}
}

func TestAddSpansStitches(t *testing.T) {
	tr := NewTracer(Config{Service: "coord", SampleRate: 1})
	_, root := tr.StartRequest(context.Background(), "req", Link{}, false)
	root.End()
	remote := SpanData{
		TraceID: string(root.TraceID()),
		SpanID:  string(NewSpanID()),
		Parent:  string(root.ID()),
		Name:    "server.analyze",
		Service: "replica-2",
	}
	tr.AddSpans([]SpanData{remote, {TraceID: ""}}) // blank trace ID is skipped
	spans := tr.Collect(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans after stitch, want 2", len(spans))
	}
	services := map[string]bool{}
	for _, s := range spans {
		services[s.Service] = true
	}
	if !services["coord"] || !services["replica-2"] {
		t.Fatalf("stitched trace missing a replica: %v", services)
	}
}

func TestRequestIDContext(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("NewRequestID length = %d, want 16 hex chars", len(id))
	}
	ctx := ContextWithRequestID(context.Background(), id)
	if got := RequestIDFromContext(ctx); got != id {
		t.Fatalf("RequestIDFromContext = %q, want %q", got, id)
	}
	if got := RequestIDFromContext(context.Background()); got != "" {
		t.Fatalf("unset request ID = %q, want empty", got)
	}
	if ctx := ContextWithRequestID(context.Background(), ""); RequestIDFromContext(ctx) != "" {
		t.Fatal("empty request ID should not be stored")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(Config{Service: "test", SampleRate: 1, RingTraces: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRequest(context.Background(), "req", Link{}, false)
				_, sp := StartSpan(ctx, "child")
				sp.Event("tick")
				sp.SetAttr(Int("i", int64(i)))
				sp.End()
				root.End()
				tr.Collect(root.TraceID())
				tr.SetSampleRate(0.5)
				tr.SetSampleRate(1)
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Traces != 8 {
		t.Fatalf("ring holds %d traces, want 8", st.Traces)
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "op")
		sp.Event("e")
		sp.End()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := NewTracer(Config{Service: "bench", SampleRate: 1, RingTraces: 4})
	ctx, root := tr.StartRequest(context.Background(), "req", Link{}, false)
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "op")
		sp.End()
	}
}
