package obs

import (
	"container/list"
	"sync"
)

// ring is the bounded in-memory store of finished spans behind the daemon's
// GET /v1/trace/{id} export: an LRU over trace IDs (touching a trace — a new
// span or a read — refreshes it) with a per-trace span cap. Both bounds drop
// and count instead of growing, so a daemon that traces every request still
// holds a fixed amount of trace data.
type ring struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[TraceID]*list.Element // -> *traceEntry
	order     *list.List                // front = most recently touched

	evictedTraces int64
	droppedSpans  int64
}

type traceEntry struct {
	id    TraceID
	spans []SpanData
}

func newRing(maxTraces, maxSpans int) *ring {
	return &ring{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    make(map[TraceID]*list.Element, maxTraces),
		order:     list.New(),
	}
}

func (r *ring) add(sp SpanData) {
	id := TraceID(sp.TraceID)
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.traces[id]
	if !ok {
		if r.order.Len() >= r.maxTraces {
			oldest := r.order.Back()
			delete(r.traces, oldest.Value.(*traceEntry).id)
			r.order.Remove(oldest)
			r.evictedTraces++
		}
		el = r.order.PushFront(&traceEntry{id: id})
		r.traces[id] = el
	} else {
		r.order.MoveToFront(el)
	}
	ent := el.Value.(*traceEntry)
	if len(ent.spans) >= r.maxSpans {
		r.droppedSpans++
		return
	}
	ent.spans = append(ent.spans, sp)
}

func (r *ring) get(id TraceID) []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.traces[id]
	if !ok {
		return nil
	}
	r.order.MoveToFront(el)
	ent := el.Value.(*traceEntry)
	out := make([]SpanData, len(ent.spans))
	copy(out, ent.spans)
	return out
}

// RingStats is the ring's cumulative movement, exposed as Prometheus
// counters by the daemon.
type RingStats struct {
	Traces        int   // traces currently retained
	EvictedTraces int64 // traces pushed out by the LRU bound
	DroppedSpans  int64 // spans dropped by the per-trace cap
}

func (r *ring) stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStats{
		Traces:        r.order.Len(),
		EvictedTraces: r.evictedTraces,
		DroppedSpans:  r.droppedSpans,
	}
}
