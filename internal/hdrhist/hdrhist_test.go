package hdrhist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 7} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone: v=%d idx=%d prev=%d", v, i, prev)
		}
		if i < 0 || i >= bucketCount {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, bucketCount)
		}
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(%d)=%d below value %d", i, up, v)
		}
		prev = i
	}
}

func TestBucketRelativeError(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := r.Int63n(1 << 50)
		up := bucketUpper(bucketIndex(v))
		if up < v {
			t.Fatalf("upper bound %d below value %d", up, v)
		}
		if v >= 64 && float64(up-v) > float64(v)/16 {
			t.Fatalf("bucket error too large: v=%d upper=%d", v, up)
		}
	}
}

func TestQuantilesAgainstSortedSamples(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	h := New()
	samples := make([]int64, 50000)
	for i := range samples {
		// Log-uniform-ish latencies from ~1us to ~1s.
		v := int64(1000) << uint(r.Intn(20))
		v += r.Int63n(v)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%v: histogram %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*1.04+64 {
			t.Errorf("q=%v: histogram %d more than ~4%% above exact %d", q, got, exact)
		}
	}
	if h.Count() != int64(len(samples)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != samples[len(samples)-1] {
		t.Errorf("Max = %d, want %d", h.Max(), samples[len(samples)-1])
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d q99=%d max=%d mean=%v",
			h.Count(), h.Quantile(0.99), h.Max(), h.Mean())
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.RecordDuration(time.Duration(r.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if q := h.QuantileDuration(0.5); q <= 0 || q > time.Second+time.Millisecond {
		t.Fatalf("p50 out of range: %v", q)
	}
}
