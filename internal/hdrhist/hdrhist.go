// Package hdrhist is a fixed-memory, lock-free latency histogram in the
// HDR style: log-linear buckets — one block of 32 linear sub-buckets per
// power-of-two magnitude — bounding the relative quantile error at ~3%
// (1/32) across the full int64 nanosecond range. Recording is one atomic
// add, so the load harness can feed it from hundreds of goroutines without
// the histogram itself showing up in the latency it measures.
package hdrhist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// subBits is the log2 of the linear sub-bucket count per magnitude block.
const subBits = 5

// bucketCount covers the full int64 range: 64 exact buckets for values
// below 2^(subBits+1), then 32 buckets per remaining magnitude.
const bucketCount = (1 << (subBits + 1)) + (1<<subBits)*(63-subBits)

// Histogram is a concurrent log-linear histogram of non-negative int64
// values (nanoseconds, by convention). The zero value is NOT ready; use New.
type Histogram struct {
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// New returns an empty histogram (~15KB, fixed).
func New() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, bucketCount)}
}

// bucketIndex maps a value to its bucket: values below 64 map exactly;
// above, the top six bits select a bucket within the value's magnitude
// block, so every bucket spans at most 1/32 of its lower bound.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 1<<(subBits+1) {
		return int(u)
	}
	m := bits.Len64(u) - 1 // floor(log2 u), >= subBits+1
	shift := m - subBits
	return int(u>>uint(shift)) + (1<<subBits)*shift
}

// bucketUpper is the inclusive upper bound of bucket i — quantiles report
// it, so a reported percentile is never below the true one.
func bucketUpper(i int) int64 {
	if i < 1<<(subBits+1) {
		return int64(i)
	}
	shift := i/(1<<subBits) - 1
	base := int64(i-(1<<subBits)*shift) << uint(shift)
	return base + (int64(1) << uint(shift)) - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration adds one observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the exact mean of recorded values (0 when empty) — the sum
// is tracked outside the buckets, so the mean carries no bucketing error.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) within
// ~3% relative error; 0 when empty. Concurrent Record calls may land in
// buckets the scan has already passed — under concurrency the result is a
// consistent-enough snapshot, not an exact cut.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n-1)) + 1 // 1-based rank of the target sample
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}
