// Package analysis is the rsvet suite: custom static analyzers encoding the
// engine's soundness invariants — the rules the type system cannot see and
// PR 5's fuzzing showed do get silently violated. Each analyzer documents
// the invariant it guards in its Doc string; docs/STATIC_ANALYSIS.md is the
// catalogue. The suite runs through cmd/rsvet (standalone or as a
// `go vet -vettool`) and blocks CI.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"regsat/internal/analysis/framework"
)

// irPkg, rsPkg, graphPkg, obsPkg are the engine packages the analyzers
// model; modulePkg scopes module-wide invariants.
const (
	irPkg     = "regsat/internal/ir"
	rsPkg     = "regsat/internal/rs"
	graphPkg  = "regsat/internal/graph"
	obsPkg    = "regsat/internal/obs"
	modulePkg = "regsat"
)

// scoped reports whether the pass's package is one the analyzer's invariant
// targets. Fixture packages (analysistest runs) are always in scope.
func scoped(pass *framework.Pass, prefixes ...string) bool {
	if pass.Fixture {
		return true
	}
	path := pass.Pkg.Path()
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// derefNamed unwraps pointers and aliases down to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isNamedType reports whether t (through pointers/aliases) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := derefNamed(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// typeOf is a nil-safe lookup of an expression's type.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objOf resolves an identifier to its object (use or def).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgPath.name (e.g. context.Background, time.Now).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// parentMap records each node's syntactic parent under a root.
type parentMap map[ast.Node]ast.Node

func buildParents(root ast.Node) parentMap {
	pm := parentMap{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// enclosingFunc walks up the parent chain to the nearest function literal
// or declaration containing n.
func enclosingFunc(pm parentMap, n ast.Node) ast.Node {
	for p := pm[n]; p != nil; p = pm[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}

// funcBody returns the body and type of a FuncDecl or FuncLit node.
func funcBody(n ast.Node) (*ast.BlockStmt, *ast.FuncType) {
	switch f := n.(type) {
	case *ast.FuncDecl:
		return f.Body, f.Type
	case *ast.FuncLit:
		return f.Body, f.Type
	}
	return nil, nil
}

// hasCtxParam reports whether a function type declares a context.Context
// parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isNamedType(typeOf(info, field.Type), "context", "Context") {
			return true
		}
	}
	return false
}

// eachFunc invokes fn for every function declaration in the files, with the
// node itself and its declared name. Function literals are NOT visited
// separately: a closure belongs to the declaration that creates it — its
// body is walked as part of the enclosing function, sharing that function's
// alias and lock state — and visiting it twice double-reports.
func eachFunc(files []*ast.File, fn func(node ast.Node, name string)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.FuncDecl); ok {
				fn(d, d.Name.Name)
				return false
			}
			return true
		})
	}
}
