// Fixture for the spanbalance analyzer: spans started with obs.StartSpan or
// Tracer.StartRequest must be ended on every control path.
package spanbalance

import (
	"context"

	"regsat/internal/obs"
)

func work() {}

// Deferred End covers every path: no diagnostics.
func goodDefer(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "good")
	defer sp.End()
	work()
	_ = ctx
}

// Straight-line End: no diagnostics.
func goodInline(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "good")
	work()
	sp.End()
}

// A deferred closure that ends the span (the attribute-stamping cleanup
// idiom): no diagnostics.
func goodDeferClosure(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "good")
	defer func() {
		sp.SetAttr(obs.Str("done", "yes"))
		sp.End()
	}()
	work()
	return nil
}

// An early-exit branch may End the span itself before leaving: no
// diagnostics.
func goodBranchEnd(ctx context.Context, fail bool) error {
	_, sp := obs.StartSpan(ctx, "good")
	if fail {
		sp.Event("failed")
		sp.End()
		return nil
	}
	work()
	sp.End()
	return nil
}

// StartRequest follows the same discipline: no diagnostics.
func goodRequest(ctx context.Context, t *obs.Tracer) {
	ctx, root := t.StartRequest(ctx, "req", obs.Link{}, false)
	defer root.End()
	_ = ctx
}

func discarded(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "leak") // want "span result discarded"
	work()
}

func neverEnded(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "leak") // want "span has no block-local End"
	work()
	_ = sp
}

func escapes(ctx context.Context, fail bool) error {
	_, sp := obs.StartSpan(ctx, "leak")
	if fail {
		return nil // want "control leaves the function between StartSpan and End"
	}
	work()
	sp.End()
	return nil
}

func breaksOut(ctx context.Context, xs []int) {
	for range xs {
		_, sp := obs.StartSpan(ctx, "leak")
		if len(xs) > 3 {
			continue // want "continue between StartSpan and End"
		}
		sp.End()
	}
}

func requestEscapes(ctx context.Context, t *obs.Tracer, fail bool) error {
	_, root := t.StartRequest(ctx, "req", obs.Link{}, false)
	if fail {
		return nil // want "control leaves the function between StartSpan and End"
	}
	root.End()
	return nil
}
