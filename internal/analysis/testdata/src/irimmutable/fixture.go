// Fixture for the irimmutable analyzer: writes to interned ir.Snapshot
// storage must be flagged; reads and writes to fresh local storage must not.
package irimmutable

import (
	"regsat/internal/graph"
	"regsat/internal/ir"
)

func mutate(s *ir.Snapshot) {
	s.N = 3                // want "write to interned ir.Snapshot storage \(field N\)"
	s.Topo[0] = 1          // want "element store"
	s.Reach[0].Set(2)      // want "BitSet.Set"
	s.AP.D[1][2] = 9       // want "element store"
	s.CP++                 // want "field CP"
	copy(s.Topo, []int{1}) // want "copy destination"
}

func mutateAliased(s *ir.Snapshot) {
	row := s.TopoPos
	row[0] = 5 // want "element store"
	dst, wt := s.Fwd.Row(0)
	dst[0] = 1 // want "element store"
	wt[0] = 2  // want "element store"
}

func mutateTable(s *ir.Snapshot, tt *ir.TypeTable) {
	tt.MultiKill = 1 // want "field MultiKill"
	tt.Values[0] = 7 // want "element store"
	_ = s
}

func readOnly(s *ir.Snapshot) []int {
	n := s.N
	topo := make([]int, n)
	copy(topo, s.Topo) // snapshot as copy source: fine
	topo[0] = 42       // fresh local storage: fine
	b := make(graph.BitSet, 4)
	b.Set(1) // fresh bitset: fine
	return topo
}
