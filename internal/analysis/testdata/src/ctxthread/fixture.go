// Fixture for the ctxthread analyzer: context.Background()/TODO() in
// library code is flagged; threading a received context is not, and
// //rsvet:allow suppresses with a recorded justification.
package ctxthread

import "context"

func shadows(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want "already receives a context.Context"
}

func missingParam() context.Context {
	return context.TODO() // want "context.TODO\(\) in library code"
}

func threads(ctx context.Context) context.Context {
	return ctx
}

func suppressed() context.Context {
	//rsvet:allow ctxthread -- deliberate context-free convenience wrapper
	return context.Background()
}
