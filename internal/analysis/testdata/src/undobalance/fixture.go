// Fixture for the undobalance analyzer: guarded probe pushes must be popped
// on every path; commit pushes and nested-loop control flow are exempt.
package undobalance

import "regsat/internal/rs"

func work() {}

// Balanced probe/rollback: no diagnostics.
func good(ik *rs.Incremental, cands []int) {
	for _, c := range cands {
		if !ik.Push(0, c) {
			continue
		}
		work()
		ik.Pop()
	}
}

// Unguarded pushes are commits: no pairing required.
func commit(ik *rs.Incremental) {
	ik.Push(0, 1)
	work()
}

func missingPop(ik *rs.Incremental, cands []int) {
	for _, c := range cands {
		if !ik.Push(0, c) { // want "probe Push has no matching Pop"
			continue
		}
		work()
	}
}

func escapes(ik *rs.Incremental, cands []int) {
	for _, c := range cands {
		if !ik.Push(0, c) {
			continue
		}
		if c > 3 {
			return // want "control leaves the region between Push and its Pop"
		}
		ik.Pop()
	}
}

func fallsThrough(ik *rs.Incremental) {
	n := 0
	if !ik.Push(0, 1) { // want "guard branch of failed Push falls through"
		n++
	}
	ik.Pop()
	_ = n
}

func orphanPop(ik *rs.Incremental) {
	work()
	ik.Pop() // want "Pop without a preceding probe Push"
}

// break/continue belonging to a nested loop inside the region is fine.
func nested(ik *rs.Incremental, cands []int) {
	for _, c := range cands {
		if !ik.Push(0, c) {
			continue
		}
		for j := 0; j < c; j++ {
			if j == 2 {
				break
			}
			work()
		}
		ik.Pop()
	}
}
