// Fixture for the nodeterminism analyzer: global math/rand, unsorted map
// sweeps, and wall-clock values escaping timing idioms are flagged; seeded
// generators, sorted sweeps, and time.Since measurement are not.
package nodeterminism

import (
	"math/rand"
	"sort"
	"time"
)

func work() {}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand source"
}

func seededShuffle(seed int64, xs []int) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func timing() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

func deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget)
}

func leak() int64 {
	now := time.Now() // want "escaping timing-only usage"
	return now.Unix()
}

func sortedSweep(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedSweep(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order"
		keys = append(keys, k)
	}
	return keys
}
