// Fixture for the fpkey analyzer: caches keyed by pointer identity, raw
// option structs, or %p-formatted strings are flagged; fingerprint-string
// keys are not.
package fpkey

import (
	"fmt"

	"regsat/internal/ir"
)

type Options struct{ Budget int }

type resultMemo struct {
	bySnap map[*ir.Snapshot][]int // want "cache type resultMemo keyed by \*regsat/internal/ir.Snapshot"
	byFP   map[string][]int       // fingerprint-keyed: fine
}

type handleCache struct {
	m map[any]string // want "cache type handleCache keyed by any"
}

var byOptions map[Options]int // want "map keyed by raw Options struct"

func canonicalKey(o Options) string {
	return fmt.Sprintf("budget=%d", o.Budget)
}

func pointerKey(s *ir.Snapshot) string {
	return fmt.Sprintf("%p", s) // want "%p in fmt.Sprintf"
}
