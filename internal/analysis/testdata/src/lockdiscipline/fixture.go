// Fixture for the lockdiscipline analyzer: fields below a mutex are guarded
// by it; access requires holding the lock, a *Locked name, or a fresh local.
package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int
}

type stats struct {
	mu   sync.RWMutex
	hits int
	ops  atomic.Int64
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want "access to n, guarded by mu"
}

func (c *counter) readLocked() int {
	return c.n // caller-holds-lock convention: fine
}

func (s *stats) read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

func (s *stats) count() {
	s.ops.Add(1) // atomic fields are exempt from the guard
}

func fresh() int {
	c := counter{}
	c.n = 1 // not shared yet: fine
	return c.n
}

func copyLock(c *counter) counter {
	d := *c // want "dereference copy of lock-bearing struct"
	return d
}
