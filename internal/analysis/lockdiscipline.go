package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"regsat/internal/analysis/framework"
)

// LockDiscipline enforces the repo's mutex conventions: a sync.Mutex (or
// RWMutex) struct field guards the fields declared after it (until the next
// mutex), so touching a guarded field requires either holding that mutex in
// the same function or being a helper whose name carries the "Locked"
// suffix (the caller-holds-lock convention: namesLocked,
// evictOverflowLocked). It also flags dereference copies of lock-bearing
// structs, which silently fork the mutex from the state it guards.
var LockDiscipline = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc: "mutexes must be held across guarded-field access\n\n" +
		"Struct fields below a sync.Mutex/RWMutex field are guarded by it\n" +
		"(sync/atomic-typed fields are exempt). Accessing a guarded field\n" +
		"requires a Lock/RLock on the same receiver expression somewhere in\n" +
		"the function, a \"Locked\" name suffix declaring the caller holds\n" +
		"it, or a receiver that is provably a fresh local. Copying a\n" +
		"lock-bearing struct by dereference is always flagged.",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *framework.Pass) error {
	info := pass.TypesInfo

	// guardedBy maps a struct field object to the name of the mutex field
	// that guards it, per the fields-below-the-mutex convention.
	guardedBy := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			currentMu := ""
			for _, field := range st.Fields.List {
				t := typeOf(info, field.Type)
				if isMutex(t) {
					if len(field.Names) == 1 {
						currentMu = field.Names[0].Name
					} else {
						currentMu = "" // embedded or multi-name mutex: skip
					}
					continue
				}
				if currentMu == "" || isAtomic(t) {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guardedBy[obj] = currentMu
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		eachFunc([]*ast.File{f}, func(node ast.Node, name string) {
			body, _ := funcBody(node)
			if body == nil {
				return
			}
			if strings.HasSuffix(name, "Locked") {
				return // declared caller-holds-lock helper
			}

			// locked collects (receiver expression, mutex field) pairs for
			// every Lock/RLock call in the function — flow-insensitive on
			// purpose: the invariant is "this function participates in the
			// locking protocol", and defer-unlock idioms make the held
			// region the whole function in practice.
			locked := map[string]bool{}
			// fresh collects locals initialized in this function from
			// composite literals or new(): not yet shared, so lock-free
			// access is fine.
			fresh := map[types.Object]bool{}
			ast.Inspect(body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.CallExpr:
					if sel, ok := st.Fun.(*ast.SelectorExpr); ok &&
						(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
						if mu, ok := sel.X.(*ast.SelectorExpr); ok && isMutex(typeOf(info, mu)) {
							locked[types.ExprString(mu.X)+"."+mu.Sel.Name] = true
						} else if id, ok := sel.X.(*ast.Ident); ok && isMutex(typeOf(info, id)) {
							locked[id.Name] = true
						}
					}
				case *ast.AssignStmt:
					if len(st.Lhs) != len(st.Rhs) {
						return true
					}
					for i, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						if freshExpr(st.Rhs[i]) {
							if obj := objOf(info, id); obj != nil {
								fresh[obj] = true
							}
						}
					}
				}
				return true
			})

			ast.Inspect(body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.SelectorExpr:
					obj := info.Uses[st.Sel]
					mu, guarded := guardedBy[obj]
					if !guarded {
						return true
					}
					if id, ok := st.X.(*ast.Ident); ok && fresh[objOf(info, id)] {
						return true
					}
					if !locked[types.ExprString(st.X)+"."+mu] {
						pass.Reportf(st.Sel.Pos(), "access to %s, guarded by %s, without %s.%s.Lock() in %s: hold the mutex or move this into a *Locked helper", st.Sel.Name, mu, types.ExprString(st.X), mu, name)
					}
				case *ast.StarExpr:
					// Dereference copies fork the mutex from its state:
					// `c := *s` on a lock-bearing struct.
					if parentIsCopy(pass, info, st) {
						pass.Reportf(st.Pos(), "dereference copy of lock-bearing struct %s: the copy's mutex no longer guards the original's state", typeOf(info, st))
					}
				}
				return true
			})
		})
	}
	return nil
}

// parentIsCopy reports whether star is the whole RHS of an assignment (so
// the struct value, mutex included, is copied) and the struct carries a
// lock.
func parentIsCopy(pass *framework.Pass, info *types.Info, star *ast.StarExpr) bool {
	t := typeOf(info, star)
	if t == nil || !containsLock(t, 0) {
		return false
	}
	for _, f := range pass.Files {
		if f.Pos() <= star.Pos() && star.End() <= f.End() {
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, rhs := range st.Rhs {
						if rhs == ast.Expr(star) {
							found = true
						}
					}
				case *ast.ValueSpec:
					for _, v := range st.Values {
						if v == ast.Expr(star) {
							found = true
						}
					}
				}
				return true
			})
			return found
		}
	}
	return false
}

// freshExpr reports whether e constructs a brand-new value (composite
// literal, address of one, or new()).
func freshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// isAtomic reports whether t is a sync/atomic value type (lock-free by
// design, so the guards-fields-below convention skips it).
func isAtomic(t types.Type) bool {
	named, ok := derefNamed(t)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// containsLock reports whether t (a struct value type) embeds a mutex at
// any depth.
func containsLock(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	if isMutex(t) {
		return true
	}
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if containsLock(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}
