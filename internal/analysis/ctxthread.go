package analysis

import (
	"go/ast"

	"regsat/internal/analysis/framework"
)

// CtxThread enforces the daemon's cancellation guarantee end to end: the
// request context must reach every in-flight simplex iteration and
// branch-and-bound node. Library code that conjures context.Background()
// (or TODO()) severs that chain — a cancelled request keeps solving,
// admission slots stay held, and drains hang on work nobody wants.
var CtxThread = &framework.Analyzer{
	Name: "ctxthread",
	Doc: "forbid context.Background()/TODO() in library code\n\n" +
		"Entry points create root contexts; libraries thread them. A\n" +
		"context.Background() call in a non-main package either shadows a\n" +
		"context the function already receives (breaking cancellation for\n" +
		"every callee under it) or marks an API that should accept one.\n" +
		"main packages and _test files are exempt; deliberate context-free\n" +
		"convenience wrappers carry an //rsvet:allow with justification.",
	Run: runCtxThread,
}

func runCtxThread(pass *framework.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // entry points own their root contexts
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		pm := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var which string
			switch {
			case pkgFuncCall(info, call, "context", "Background"):
				which = "context.Background()"
			case pkgFuncCall(info, call, "context", "TODO"):
				which = "context.TODO()"
			default:
				return true
			}
			if fn := enclosingFunc(pm, call); fn != nil {
				if _, ft := funcBody(fn); hasCtxParam(info, ft) {
					pass.Reportf(call.Pos(), "%s inside a function that already receives a context.Context: thread the parameter so cancellation reaches in-flight solves", which)
					return true
				}
			}
			pass.Reportf(call.Pos(), "%s in library code: accept a context.Context parameter and thread it (cancellation must reach simplex iterations and search nodes)", which)
			return true
		})
	}
	return nil
}
