package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// allowRe matches the suppression directive:
//
//	//rsvet:allow <analyzer>[,<analyzer>...] -- <justification>
//
// The justification is mandatory: a suppression without a recorded reason is
// itself a diagnostic. A directive suppresses matching diagnostics on its
// own line and on the line directly below it (so it can ride at the end of
// the offending line or stand alone above it).
var allowRe = regexp.MustCompile(`^//rsvet:allow\s+([a-z][a-z0-9_,]*)\s+--\s+(\S.*)$`)

// malformedAllowRe catches directives that parse as rsvet:allow but miss the
// mandatory ` -- reason` tail.
var malformedAllowRe = regexp.MustCompile(`^//rsvet:allow\b`)

// allowIndex maps "<file>:<line>" to the analyzer names allowed there.
type allowIndex map[string]map[string]bool

// collectAllows scans a package's comments for //rsvet:allow directives.
// Malformed directives are reported as diagnostics of the pseudo-analyzer
// "rsvet" so the gate fails on reasonless suppressions.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := allowIndex{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					if malformedAllowRe.MatchString(text) {
						bad = append(bad, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "rsvet",
							Message:  "malformed //rsvet:allow directive: want `//rsvet:allow <analyzer> -- <justification>`",
						})
					}
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if idx[key] == nil {
							idx[key] = map[string]bool{}
						}
						idx[key][name] = true
					}
				}
			}
		}
	}
	return idx, bad
}

// allowed reports whether d is suppressed by a directive.
func (idx allowIndex) allowed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	set := idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return set[d.Analyzer]
}

// AnalyzePackage runs the analyzers over one loaded package, applying
// //rsvet:allow suppressions, and returns the surviving diagnostics.
func AnalyzePackage(analyzers []*Analyzer, fset *token.FileSet, pkg *Package, fixture bool) ([]Diagnostic, error) {
	diags, err := runAnalyzers(analyzers, fset, pkg.Files, pkg.Pkg, pkg.Info, fixture)
	if err != nil {
		return nil, err
	}
	allows, bad := collectAllows(fset, pkg.Files)
	kept := bad
	for _, d := range diags {
		if !allows.allowed(fset, d) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// Run loads every package matching patterns under dir, runs the analyzers,
// and returns the findings sorted by position. It is the engine behind
// cmd/rsvet's pattern mode and the repo-wide meta-test.
func Run(dir string, analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, _, err := Load(fset, dir, patterns, nil)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		diags, err := AnalyzePackage(analyzers, fset, pkg, false)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			findings = append(findings, render(fset, d))
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Position != findings[j].Position {
			return findings[i].Position < findings[j].Position
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
