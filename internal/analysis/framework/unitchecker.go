package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each package unit (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Unitchecker implements the `go vet -vettool` protocol for one package
// unit: args is the full tool argument list after the program name. It
// reports (handled, exitCode); handled is false when args do not look like
// a vet-tool invocation, so the caller can fall through to pattern mode.
//
// Protocol:
//
//	tool -V=full        print a version line usable as a cache key
//	tool -flags         print the tool's flags as JSON
//	tool [flags] x.cfg  check one package unit described by the config
func Unitchecker(progname string, analyzers []*Analyzer, args []string, stdout, stderr io.Writer) (bool, int) {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Fprintf(stdout, "%s version devel buildID=%s\n", progname, selfID())
			return true, 0
		case a == "-flags" || a == "--flags":
			// The go command queries supported flags so it only forwards
			// what the tool understands.
			type flagDesc struct {
				Name  string `json:"Name"`
				Bool  bool   `json:"Bool"`
				Usage string `json:"Usage"`
			}
			json.NewEncoder(stdout).Encode([]flagDesc{
				{Name: "json", Bool: true, Usage: "emit findings as JSON"},
			})
			return true, 0
		}
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		return false, 0
	}
	code := checkUnit(analyzers, args[len(args)-1], stderr)
	return true, code
}

// selfID hashes the tool binary so the go command's vet cache invalidates
// when rsvet changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
}

// checkUnit analyzes one package unit. Exit codes follow vet conventions:
// 0 clean, 1 internal failure, 2 findings.
func checkUnit(analyzers []*Analyzer, cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "rsvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "rsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects a facts file for downstream units whether or
	// not we have facts to export; rsvet's analyzers are fact-free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "rsvet: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || skipUnit(cfg.ImportPath) || len(cfg.GoFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	// In-package test files would need the test variant's expanded export
	// data for their own package; rsvet's invariants target non-test
	// library code, so the unit shrinks to its non-test files.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	pkg, err := TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "rsvet: %v\n", err)
		return 1
	}
	diags, err := AnalyzePackage(analyzers, fset, pkg, false)
	if err != nil {
		fmt.Fprintf(stderr, "rsvet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		f := render(fset, d)
		fmt.Fprintf(stderr, "%s: %s: %s\n", f.Position, f.Analyzer, f.Message)
	}
	return 2
}

// skipUnit reports whether a unit is a test variant — "pkg [pkg.test]"
// recompilations, "pkg_test" external test packages, and generated
// "pkg.test" mains — which rsvet leaves to the repo's regular tests.
func skipUnit(importPath string) bool {
	return strings.Contains(importPath, " [") ||
		strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test")
}
