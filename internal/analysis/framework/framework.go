// Package framework is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface the rsvet suite needs: an Analyzer
// runs over one type-checked package and reports position-tagged
// diagnostics. The toolchain image this repo builds in has no module proxy
// access, so the framework is built on the standard library only — go/ast
// and go/types for the representation, `go list -export` plus go/importer's
// gc importer for loading (the same mechanism `go vet`'s unitchecker uses).
//
// Three entry points consume it:
//
//   - Run (driver.go): load packages by pattern, run the suite, apply
//     //rsvet:allow suppressions — the programmatic API behind cmd/rsvet
//     and the repo-wide meta-test;
//   - Unitchecker (unitchecker.go): the `go vet -vettool` protocol, so
//     rsvet also runs as a vet tool with the go command's caching;
//   - internal/analysis/analysistest: fixture-based analyzer tests with
//     `// want` expectations.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name, a one-line contract, and a Run
// function invoked once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rsvet:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the invariant the analyzer enforces (first line is the
	// summary shown by rsvet -list).
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Fixture marks an analysistest run: analyzers whose invariant is
	// scoped to specific repo packages (undobalance, nodeterminism, …)
	// treat fixture packages as in scope so their testdata exercises the
	// check without masquerading as engine import paths.
	Fixture bool

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is a rendered diagnostic: the JSON shape cmd/rsvet -json emits
// and CI uploads as an artifact.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"posn"`
	Message  string `json:"message"`
}

// render flattens a diagnostic against a file set.
func render(fset *token.FileSet, d Diagnostic) Finding {
	return Finding{
		Analyzer: d.Analyzer,
		Position: fset.Position(d.Pos).String(),
		Message:  d.Message,
	}
}

// runAnalyzers applies every analyzer to one loaded package and returns the
// raw (unsuppressed) diagnostics.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, fixture bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Fixture:   fixture,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers read populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
