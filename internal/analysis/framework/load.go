package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -e -json -export -deps` in dir and returns the
// decoded package stream. -export compiles every listed package into the
// build cache and reports its export-data file, which is what the type
// checker imports dependencies from — no source re-checking, no network.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportMap indexes every listed package's export-data file by import path.
func exportMap(pkgs []*listedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// NewImporter returns a types.Importer resolving import paths through
// export-data files (importPath → file). importMap optionally rewrites
// import paths first (the vet protocol's vendor map; nil for none).
func NewImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// TypeCheck parses and type-checks one package's files against an importer.
// Parse errors are fatal; type errors are returned joined so the caller can
// decide (the driver treats them as fatal — the repo must compile).
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type checking %s:\n  %s", importPath, strings.Join(typeErrs, "\n  "))
	}
	return &Package{ImportPath: importPath, Files: files, Pkg: pkg, Info: info}, nil
}

// Load lists patterns under dir, compiles their dependency closure to
// export data, and returns the requested (non-dependency, non-stdlib,
// non-test-variant) packages parsed and type-checked. extraDeps names
// additional packages to compile into the export map without analyzing
// them — the analysistest harness uses it so fixtures can import stdlib
// packages the repo itself never touches.
func Load(fset *token.FileSet, dir string, patterns, extraDeps []string) ([]*Package, map[string]string, error) {
	listed, err := goList(dir, append(append([]string{}, patterns...), extraDeps...))
	if err != nil {
		return nil, nil, err
	}
	exports := exportMap(listed)
	imp := NewImporter(fset, exports, nil)
	extra := make(map[string]bool, len(extraDeps))
	for _, d := range extraDeps {
		extra[d] = true
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.ForTest != "" || extra[lp.ImportPath] {
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			names[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := TypeCheck(fset, lp.ImportPath, names, imp)
		if err != nil {
			return nil, nil, err
		}
		pkg.Dir = lp.Dir
		out = append(out, pkg)
	}
	return out, exports, nil
}
