package analysis

import (
	"go/ast"
	"go/types"

	"regsat/internal/analysis/framework"
)

// NoDeterminism guards the reproducibility contract of the result-producing
// packages (internal/rs, internal/solver, internal/reduce): the same graph
// under the same options must yield the same result bytes, because results
// are fingerprint-keyed, persisted across processes, and compared across
// backends by the differential tests. The three classic leaks are the
// global math/rand source, map iteration order, and wall-clock values.
var NoDeterminism = &framework.Analyzer{
	Name: "nodeterminism",
	Doc: "no nondeterminism sources in result-producing packages\n\n" +
		"Flags, in internal/rs, internal/solver, and internal/reduce:\n" +
		"global math/rand functions (seeded *rand.Rand constructors are\n" +
		"fine), map iteration whose collected output is not visibly sorted\n" +
		"in the same block, and time.Now() escaping timing-only usage\n" +
		"(time.Since / deadline arithmetic).",
	Run: runNoDeterminism,
}

// timingMethods are the time.Time methods that consume a wall-clock value
// for measurement or deadline arithmetic without leaking it into results.
var timingMethods = map[string]bool{
	"Add": true, "Sub": true, "After": true, "Before": true,
	"Equal": true, "Compare": true, "IsZero": true,
}

// randConstructors build explicitly seeded generators — the deterministic,
// allowed way to use math/rand.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sortFuncs recognizes the sort/slices calls that restore determinism after
// a map sweep.
func isSortCall(info *types.Info, call *ast.CallExpr) (args []ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return nil, false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
		return call.Args, true
	}
	return nil, false
}

func runNoDeterminism(pass *framework.Pass) error {
	if !scoped(pass, rsPkg, "regsat/internal/solver", "regsat/internal/reduce") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		pm := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				checkGlobalRand(pass, info, node)
			case *ast.CallExpr:
				if pkgFuncCall(info, node, "time", "Now") {
					checkTimeNow(pass, info, pm, node)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, info, pm, node)
			}
			return true
		})
	}
	return nil
}

// checkGlobalRand flags package-level math/rand functions (they draw from
// the process-global, racily shared, unseeded-by-us source).
func checkGlobalRand(pass *framework.Pass, info *types.Info, sel *ast.SelectorExpr) {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	fn, isFunc := obj.(*types.Func)
	if !isFunc || randConstructors[obj.Name()] {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // method on an explicitly constructed generator: fine
	}
	pass.Reportf(sel.Pos(), "global math/rand source (%s.%s) in a result-producing package: results are fingerprint-keyed and persisted, so use an explicitly seeded *rand.Rand threaded by the caller", path, obj.Name())
}

// checkTimeNow allows time.Now only in timing/deadline idioms: consumed
// directly by a timing method or time.Since, or bound to a local whose
// every use is such an idiom.
func checkTimeNow(pass *framework.Pass, info *types.Info, pm parentMap, call *ast.CallExpr) {
	if timingUse(info, pm, call) {
		return
	}
	if assign, ok := pm[call].(*ast.AssignStmt); ok {
		for i, rhs := range assign.Rhs {
			if rhs != ast.Expr(call) || i >= len(assign.Lhs) {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				break
			}
			obj := objOf(info, id)
			if obj == nil {
				break
			}
			if fn := enclosingFunc(pm, assign); fn != nil && timingOnlyVar(info, pm, fn, obj) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "time.Now() escaping timing-only usage in a result-producing package: wall-clock values must not reach results (keep them inside time.Since or deadline arithmetic)")
}

// timingUse reports whether expression e is directly consumed by a timing
// idiom: a timing method selector or a time.Since argument.
func timingUse(info *types.Info, pm parentMap, e ast.Expr) bool {
	switch parent := pm[e].(type) {
	case *ast.SelectorExpr:
		return timingMethods[parent.Sel.Name]
	case *ast.CallExpr:
		if pkgFuncCall(info, parent, "time", "Since") {
			return true
		}
	case *ast.ParenExpr:
		return timingUse(info, pm, parent)
	}
	return false
}

// timingOnlyVar reports whether every use of obj inside fn is a timing
// idiom (or a plain reassignment of the variable itself).
func timingOnlyVar(info *types.Info, pm parentMap, fn ast.Node, obj types.Object) bool {
	body, _ := funcBody(fn)
	if body == nil {
		return false
	}
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID || info.Uses[id] != obj {
			return true
		}
		if assign, isAssign := pm[id].(*ast.AssignStmt); isAssign {
			for _, lhs := range assign.Lhs {
				if lhs == ast.Expr(id) {
					return true // reassignment target
				}
			}
		}
		if !timingUse(info, pm, id) {
			ok = false
		}
		return true
	})
	return ok
}

// checkMapRange flags iteration over a map unless every slice the loop
// fills is visibly sorted later in the same block — the one pattern that
// provably erases the order dependence.
func checkMapRange(pass *framework.Pass, info *types.Info, pm parentMap, rng *ast.RangeStmt) {
	t := typeOf(info, rng.X)
	if t == nil {
		return
	}
	if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
		return
	}
	// Objects appended to (or index-assigned) inside the loop body.
	filled := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					filled[obj] = true
				}
			}
		}
		return true
	})
	block, ok := pm[rng].(*ast.BlockStmt)
	if ok {
		idx := -1
		for i, st := range block.List {
			if st == ast.Stmt(rng) {
				idx = i
				break
			}
		}
		for i := idx + 1; idx >= 0 && i < len(block.List); i++ {
			es, ok := block.List[i].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if args, ok := isSortCall(info, call); ok {
				for _, a := range args {
					if id, isID := a.(*ast.Ident); isID && filled[objOf(info, id)] {
						return // the collected output is sorted: order erased
					}
				}
			}
		}
	}
	pass.Reportf(rng.Pos(), "map iteration order reaches a result-producing path: collect and sort the keys (or values) in this block, or iterate a deterministic index")
}
