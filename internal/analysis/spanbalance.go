package analysis

import (
	"go/ast"
	"go/types"

	"regsat/internal/analysis/framework"
)

// SpanBalance enforces the obs span lifecycle: a span started with
// obs.StartSpan or (*obs.Tracer).StartRequest must be ended on every control
// path. A span that is never ended never reaches the trace ring — the
// request's export silently loses that subtree — and since *Span methods are
// nil-safe, nothing crashes to reveal the leak. The accepted idioms are
// block-local, mirroring undobalance: `defer sp.End()` (directly or inside a
// deferred closure) registered before control can escape, or a
// statement-level `sp.End()` with no un-ended path out of the region in
// between (an early-exit branch may End the span itself before leaving).
var SpanBalance = &framework.Analyzer{
	Name: "spanbalance",
	Doc: "end obs spans on every control path\n\n" +
		"Spans deliver themselves to the trace ring only in End. A path that\n" +
		"returns between StartSpan and End drops the span (and every event\n" +
		"recorded on it) from the trace export without any runtime symptom.\n" +
		"Flags: span results assigned to the blank identifier, spans with no\n" +
		"block-local End or defer End, and control leaving the Start..End\n" +
		"region on a path that has not ended the span.",
	Run: runSpanBalance,
}

func runSpanBalance(pass *framework.Pass) error {
	if !scoped(pass, modulePkg) {
		return nil
	}
	info := pass.TypesInfo

	// startCall matches the span-creating calls: the package function
	// obs.StartSpan and the method (*obs.Tracer).StartRequest. Both return
	// (context.Context, *obs.Span).
	startCall := func(e ast.Expr) *ast.CallExpr {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if pkgFuncCall(info, call, obsPkg, "StartSpan") {
			return call
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "StartRequest" && isNamedType(typeOf(info, sel.X), obsPkg, "Tracer") {
			return call
		}
		return nil
	}
	// endsVar reports whether e is `sp.End()` for the given span object.
	endsVar := func(e ast.Expr, sp types.Object) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && objOf(info, id) == sp
	}
	// endStmt reports whether st ends the span: a plain `sp.End()`, a
	// `defer sp.End()`, or a deferred closure that calls sp.End() inside
	// (the attribute-stamping cleanup idiom).
	endStmt := func(st ast.Stmt, sp types.Object) bool {
		switch s := st.(type) {
		case *ast.ExprStmt:
			return endsVar(s.X, sp)
		case *ast.DeferStmt:
			if endsVar(s.Call, sp) {
				return true
			}
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				found := false
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					if e, ok := n.(ast.Expr); ok && endsVar(e, sp) {
						found = true
					}
					return !found
				})
				return found
			}
		}
		return false
	}

	// walkRegion checks the statements between a start and its top-level
	// closer: every Return or region-escaping Branch must be preceded, on
	// its own path, by an End of the span. `ended` is the path state coming
	// in; the return value is the state at fall-through. Branch bodies are
	// walked with the incoming state but do not upgrade the fall-through
	// state — a branch-local End covers only paths through that branch, and
	// those paths must leave the region themselves. Nested function literals
	// are separate control flow and are skipped.
	var walkRegion func(stmts []ast.Stmt, sp types.Object, ended bool, depth int) bool
	walkRegion = func(stmts []ast.Stmt, sp types.Object, ended bool, depth int) bool {
		for _, st := range stmts {
			if endStmt(st, sp) {
				ended = true
				continue
			}
			switch s := st.(type) {
			case *ast.ReturnStmt:
				if !ended {
					pass.Reportf(s.Pos(), "control leaves the function between StartSpan and End: the span is never delivered on this path")
				}
			case *ast.BranchStmt:
				if !ended && (s.Label != nil || (depth == 0 && s.Tok.String() != "fallthrough")) {
					pass.Reportf(s.Pos(), "%s between StartSpan and End: the span is never delivered on this path", s.Tok)
				}
			case *ast.BlockStmt:
				ended = walkRegion(s.List, sp, ended, depth)
			case *ast.IfStmt:
				walkRegion(s.Body.List, sp, ended, depth)
				if s.Else != nil {
					walkRegion([]ast.Stmt{s.Else}, sp, ended, depth)
				}
			case *ast.ForStmt:
				walkRegion(s.Body.List, sp, ended, depth+1)
			case *ast.RangeStmt:
				walkRegion(s.Body.List, sp, ended, depth+1)
			case *ast.SwitchStmt:
				walkRegion(s.Body.List, sp, ended, depth+1)
			case *ast.TypeSwitchStmt:
				walkRegion(s.Body.List, sp, ended, depth+1)
			case *ast.SelectStmt:
				walkRegion(s.Body.List, sp, ended, depth+1)
			case *ast.CaseClause:
				walkRegion(s.Body, sp, ended, depth)
			case *ast.CommClause:
				walkRegion(s.Body, sp, ended, depth)
			case *ast.LabeledStmt:
				ended = walkRegion([]ast.Stmt{s.Stmt}, sp, ended, depth)
			}
		}
		return ended
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range block.List {
				as, ok := st.(*ast.AssignStmt)
				if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
					continue
				}
				call := startCall(as.Rhs[0])
				if call == nil {
					continue
				}
				id, ok := as.Lhs[1].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span result discarded: a span assigned to _ can never be ended or delivered")
					continue
				}
				sp := objOf(info, id)
				if sp == nil {
					continue
				}
				closer := -1
				for j := i + 1; j < len(block.List); j++ {
					if endStmt(block.List[j], sp) {
						closer = j
						break
					}
				}
				if closer < 0 {
					pass.Reportf(call.Pos(), "span has no block-local End: end it with defer %s.End() or a statement-level %s.End() in this block", id.Name, id.Name)
					continue
				}
				walkRegion(block.List[i+1:closer], sp, false, 0)
			}
			return true
		})
	}
	return nil
}
