package analysis

import (
	"go/ast"

	"regsat/internal/analysis/framework"
)

// UndoBalance enforces the arena undo-trail discipline of the incremental
// exact search (rs.Incremental): a *probe* push — the guarded form
// `if !ik.Push(...) { ... }` — must be rolled back by a Pop on every path,
// and the guard's failure branch must leave the region (Push reported
// false, so there is no frame to pop). Unguarded `ik.Push(...)` statements
// are commits (single-killer prefixes, the greedy's final decision) that
// persist for the remainder of the search and are exempt from pairing.
var UndoBalance = &framework.Analyzer{
	Name: "undobalance",
	Doc: "balance rs.Incremental Push/Pop along every control path\n\n" +
		"The branch-and-bound's longest-path matrix, DV_k order rows, and\n" +
		"matching are restored exclusively by Pop replaying the undo trail.\n" +
		"A probe push that escapes its block without a Pop (early return,\n" +
		"continue, break) leaves the evaluator permanently corrupted for\n" +
		"every sibling subtree. Flags: guarded pushes with no block-local\n" +
		"Pop, control leaving the Push..Pop region, guard failure branches\n" +
		"that fall through, and Pops with no preceding probe.",
	Run: runUndoBalance,
}

func runUndoBalance(pass *framework.Pass) error {
	if !scoped(pass, rsPkg) {
		return nil
	}
	info := pass.TypesInfo

	// incCall matches method calls on (*rs.Incremental).
	incCall := func(e ast.Expr, name string) *ast.CallExpr {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return nil
		}
		if !isNamedType(typeOf(info, sel.X), rsPkg, "Incremental") {
			return nil
		}
		return call
	}
	// guardedPush matches `if !recv.Push(...) { ... }` (no else, the probe
	// idiom) and returns the Push call.
	guardedPush := func(st ast.Stmt) *ast.CallExpr {
		ifst, ok := st.(*ast.IfStmt)
		if !ok || ifst.Init != nil {
			return nil
		}
		not, ok := ifst.Cond.(*ast.UnaryExpr)
		if !ok || not.Op.String() != "!" {
			return nil
		}
		return incCall(not.X, "Push")
	}
	popStmt := func(st ast.Stmt) bool {
		switch s := st.(type) {
		case *ast.ExprStmt:
			return incCall(s.X, "Pop") != nil
		case *ast.DeferStmt:
			return incCall(s.Call, "Pop") != nil
		}
		return false
	}
	// reportEscapes flags control leaving the Push..Pop region: returns and
	// gotos anywhere, break/continue not swallowed by a loop or switch that
	// is itself inside the region. Nested function literals are separate
	// control flow.
	var walkEscape func(st ast.Stmt, depth int)
	walkEscape = func(st ast.Stmt, depth int) {
		switch s := st.(type) {
		case *ast.ReturnStmt:
			pass.Reportf(s.Pos(), "control leaves the region between Push and its Pop: the undo trail is not restored on this path")
		case *ast.BranchStmt:
			// Labeled branches may jump past any nesting; unlabeled ones
			// escape only from the region's own level.
			if s.Label != nil || (depth == 0 && s.Tok.String() != "fallthrough") {
				pass.Reportf(s.Pos(), "%s between Push and its Pop: the undo trail is not restored on this path", s.Tok)
			}
		case *ast.BlockStmt:
			for _, inner := range s.List {
				walkEscape(inner, depth)
			}
		case *ast.IfStmt:
			walkEscape(s.Body, depth)
			if s.Else != nil {
				walkEscape(s.Else, depth)
			}
		case *ast.ForStmt:
			walkEscape(s.Body, depth+1)
		case *ast.RangeStmt:
			walkEscape(s.Body, depth+1)
		case *ast.SwitchStmt:
			walkEscape(s.Body, depth+1)
		case *ast.TypeSwitchStmt:
			walkEscape(s.Body, depth+1)
		case *ast.SelectStmt:
			walkEscape(s.Body, depth+1)
		case *ast.CaseClause:
			for _, inner := range s.Body {
				walkEscape(inner, depth)
			}
		case *ast.CommClause:
			for _, inner := range s.Body {
				walkEscape(inner, depth)
			}
		case *ast.LabeledStmt:
			walkEscape(s.Stmt, depth)
		}
	}
	reportEscapes := func(stmts []ast.Stmt) {
		for _, st := range stmts {
			walkEscape(st, 0)
		}
	}
	terminates := func(body *ast.BlockStmt) bool {
		if body == nil || len(body.List) == 0 {
			return false
		}
		switch body.List[len(body.List)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
		return false
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			type open struct {
				idx  int
				call *ast.CallExpr
			}
			var opens []open
			for i, st := range block.List {
				if push := guardedPush(st); push != nil {
					opens = append(opens, open{idx: i, call: push})
					if !terminates(st.(*ast.IfStmt).Body) {
						pass.Reportf(push.Pos(), "guard branch of failed Push falls through: when Push reports a cycle no frame was pushed, so execution must leave before the matching Pop")
					}
					continue
				}
				if popStmt(st) {
					if len(opens) == 0 {
						pass.Reportf(st.Pos(), "Pop without a preceding probe Push in this block: probe pushes and their rollbacks must be block-local")
						continue
					}
					last := opens[len(opens)-1]
					opens = opens[:len(opens)-1]
					reportEscapes(block.List[last.idx+1 : i])
				}
			}
			for _, o := range opens {
				pass.Reportf(o.call.Pos(), "probe Push has no matching Pop in its block: every guarded push must be rolled back before the block ends")
			}
			return true
		})
	}
	return nil
}
