// Package analysistest runs rsvet analyzers over fixture packages under
// testdata/src and checks their diagnostics against `// want "regex"`
// comments — the same contract as golang.org/x/tools' analysistest, rebuilt
// on the stdlib-only framework. Fixtures are real, type-checked Go: they
// import the engine packages (regsat/internal/ir, internal/rs, ...) whose
// export data is compiled once per test binary via `go list -export`.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"regsat/internal/analysis/framework"
)

// fixtureDeps is everything any fixture may import: the engine packages the
// analyzers model plus the stdlib packages the invariants mention.
var fixtureDeps = []string{
	"regsat/internal/ir",
	"regsat/internal/rs",
	"regsat/internal/graph",
	"regsat/internal/ddg",
	"regsat/internal/obs",
	"context",
	"fmt",
	"math/rand",
	"sort",
	"sync",
	"sync/atomic",
	"time",
}

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

// sharedExports compiles the fixture dependency closure to export data once
// per test binary.
func sharedExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		root, err := repoRoot()
		if err != nil {
			exportsErr = err
			return
		}
		fset := token.NewFileSet()
		_, exp, err := framework.Load(fset, root, nil, fixtureDeps)
		if err != nil {
			exportsErr = err
			return
		}
		exports = exp
	})
	return exports, exportsErr
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// wantRe extracts `// want "regex"` expectations; several may share a line.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run type-checks each fixture package testdata/src/<dir> and verifies the
// analyzer's diagnostics match its `// want` comments exactly — every want
// matched by a diagnostic on its line, no diagnostic without a want.
func Run(t *testing.T, a *framework.Analyzer, dirs ...string) {
	t.Helper()
	exp, err := sharedExports()
	if err != nil {
		t.Fatalf("compiling fixture dependencies: %v", err)
	}
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			runDir(t, a, exp, dir)
		})
	}
}

func runDir(t *testing.T, a *framework.Analyzer, exports map[string]string, dir string) {
	t.Helper()
	src := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(src, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", src)
	}
	sort.Strings(files)

	var wants []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}

	fset := token.NewFileSet()
	imp := framework.NewImporter(fset, exports, nil)
	pkg, err := framework.TypeCheck(fset, dir, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	diags, err := framework.AnalyzePackage([]*framework.Analyzer{a}, fset, pkg, true)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
