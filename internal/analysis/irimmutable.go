package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"regsat/internal/analysis/framework"
)

// IRImmutable enforces the ir.Snapshot immutability contract: snapshots are
// interned and shared across goroutines and across structurally identical
// graphs, so every field, slice, bitset, and matrix reachable from one is
// read-only outside internal/ir's own constructors. A single write through
// an aliased row corrupts every holder of the snapshot at once — without a
// data-race signature when the readers come later.
var IRImmutable = &framework.Analyzer{
	Name: "irimmutable",
	Doc: "forbid writes to ir.Snapshot storage outside internal/ir\n\n" +
		"Snapshots (and their TypeTable/CSR parts) are immutable after Build:\n" +
		"they are shared by the interner, the batch memo, and every analysis\n" +
		"layer. This analyzer flags assignments, element stores, copy/append\n" +
		"targets, and bitset mutations whose destination is reached from a\n" +
		"snapshot — including through one level of local aliasing\n" +
		"(row := s.AP.D[u]; row[v] = x).",
	Run: runIRImmutable,
}

// bitsetMutators are the graph.BitSet methods that write the receiver.
var bitsetMutators = map[string]bool{"Set": true, "Clear": true}

func runIRImmutable(pass *framework.Pass) error {
	if pass.Pkg.Path() == irPkg {
		return nil // the constructor package legitimately writes
	}
	info := pass.TypesInfo
	eachFunc(pass.Files, func(node ast.Node, _ string) {
		body, _ := funcBody(node)
		if body == nil {
			return
		}
		// aliased holds locals bound to snapshot-reachable storage
		// (slices, maps, pointers only — value copies are safe).
		aliased := map[types.Object]bool{}
		derives := func(e ast.Expr) bool { return false }
		derives = func(e ast.Expr) bool {
			switch x := e.(type) {
			case *ast.Ident:
				if obj := objOf(info, x); obj != nil && aliased[obj] {
					return true
				}
				return isIRStorage(typeOf(info, x))
			case *ast.SelectorExpr:
				if isIRStorage(typeOf(info, x)) {
					return true
				}
				return derives(x.X)
			case *ast.IndexExpr:
				return derives(x.X)
			case *ast.SliceExpr:
				return derives(x.X)
			case *ast.StarExpr:
				return derives(x.X)
			case *ast.ParenExpr:
				return derives(x.X)
			case *ast.CallExpr:
				// CSR.Row returns slices aliasing snapshot storage.
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Row" {
					return derives(sel.X)
				}
				return false
			}
			return false
		}
		reportWrite := func(pos token.Pos, what string) {
			pass.Reportf(pos, "write to interned ir.Snapshot storage (%s): snapshots are immutable and shared; build a new graph/snapshot instead", what)
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					switch l := lhs.(type) {
					case *ast.SelectorExpr:
						if derives(l.X) {
							reportWrite(l.Pos(), "field "+l.Sel.Name)
						}
					case *ast.IndexExpr:
						if derives(l.X) {
							reportWrite(l.Pos(), "element store")
						}
					case *ast.StarExpr:
						if derives(l.X) {
							reportWrite(l.Pos(), "pointer store")
						}
					}
				}
				// One-level alias tracking: v := <snapshot-reachable> where
				// the value shares backing storage.
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						if derives(st.Rhs[i]) && sharesStorage(typeOf(info, st.Rhs[i])) {
							if obj := objOf(info, id); obj != nil {
								aliased[obj] = true
							}
						}
					}
				} else if len(st.Rhs) == 1 && derives(st.Rhs[0]) {
					// Multi-value form: dst, wt := s.Fwd.Row(u) — every
					// result that shares storage aliases the snapshot.
					for _, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						if obj := objOf(info, id); obj != nil && sharesStorage(obj.Type()) {
							aliased[obj] = true
						}
					}
				}
			case *ast.IncDecStmt:
				switch x := st.X.(type) {
				case *ast.SelectorExpr:
					if derives(x.X) {
						reportWrite(x.Pos(), "field "+x.Sel.Name)
					}
				case *ast.IndexExpr:
					if derives(x.X) {
						reportWrite(x.Pos(), "element store")
					}
				}
			case *ast.CallExpr:
				if sel, ok := st.Fun.(*ast.SelectorExpr); ok && bitsetMutators[sel.Sel.Name] &&
					isNamedType(typeOf(info, sel.X), graphPkg, "BitSet") && derives(sel.X) {
					reportWrite(sel.Pos(), "BitSet."+sel.Sel.Name)
				}
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
					if info.Uses[id] == types.Universe.Lookup("copy") && derives(st.Args[0]) {
						reportWrite(st.Args[0].Pos(), "copy destination")
					}
				}
			}
			return true
		})
	})
	return nil
}

// isIRStorage reports whether t (through pointers) is one of the shared
// snapshot storage structs.
func isIRStorage(t types.Type) bool {
	for _, name := range [...]string{"Snapshot", "TypeTable", "CSR"} {
		if isNamedType(t, irPkg, name) {
			return true
		}
	}
	return false
}

// sharesStorage reports whether a value of type t aliases its source's
// backing memory when copied (so writes through the copy are writes to the
// source).
func sharesStorage(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}
