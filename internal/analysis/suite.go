package analysis

import "regsat/internal/analysis/framework"

// Suite returns the full rsvet analyzer set in stable order. cmd/rsvet and
// the repo-wide meta-test both run exactly this list, so adding an analyzer
// here is all it takes to make it a CI gate.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		CtxThread,
		FPKey,
		IRImmutable,
		LockDiscipline,
		NoDeterminism,
		SpanBalance,
		UndoBalance,
	}
}
