package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"regsat/internal/analysis"
	"regsat/internal/analysis/framework"
)

// TestSuiteRepoClean is the repo-wide gate: the full rsvet suite must exit
// clean over every package. It runs in -short mode too — a soundness
// invariant that only holds on full runs is not an invariant.
func TestSuiteRepoClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := framework.Run(root, analysis.Suite(), []string{"./..."})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
