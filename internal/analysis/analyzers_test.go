package analysis_test

import (
	"testing"

	"regsat/internal/analysis"
	"regsat/internal/analysis/analysistest"
)

func TestIRImmutable(t *testing.T) { analysistest.Run(t, analysis.IRImmutable, "irimmutable") }

func TestUndoBalance(t *testing.T) { analysistest.Run(t, analysis.UndoBalance, "undobalance") }

func TestCtxThread(t *testing.T) { analysistest.Run(t, analysis.CtxThread, "ctxthread") }

func TestFPKey(t *testing.T) { analysistest.Run(t, analysis.FPKey, "fpkey") }

func TestNoDeterminism(t *testing.T) { analysistest.Run(t, analysis.NoDeterminism, "nodeterminism") }

func TestSpanBalance(t *testing.T) { analysistest.Run(t, analysis.SpanBalance, "spanbalance") }

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysis.LockDiscipline, "lockdiscipline")
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 7 {
		t.Errorf("suite has %d analyzers, want at least 7", len(seen))
	}
}
