package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"regsat/internal/analysis/framework"
)

// FPKey enforces the cache-keying contract every store in the repo shares:
// results are keyed by the ir structural fingerprint plus a *canonicalized*
// options string (rsOptionsKey, solver.Options.Key), never by pointer
// identity or by raw option structs. A pointer-keyed cache silently stops
// hitting across structurally identical graphs (the whole point of the
// interner), and a raw-options key splits entries whenever an
// irrelevant-but-unequal field differs.
var FPKey = &framework.Analyzer{
	Name: "fpkey",
	Doc: "caches must be keyed by fingerprint + canonical options\n\n" +
		"Flags, in cache-shaped types (name matching memo/cache/store/\n" +
		"intern): map fields keyed by pointers or interfaces. Everywhere:\n" +
		"maps keyed by raw *Options structs (canonicalize to a key string\n" +
		"first) and %p in format strings used to build keys.",
	Run: runFPKey,
}

// cacheTypeRe matches struct type names that hold cached state.
var cacheTypeRe = regexp.MustCompile(`(?i)(memo|cache|store|intern)`)

func runFPKey(pass *framework.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.TypeSpec:
				st, ok := node.Type.(*ast.StructType)
				if !ok || !cacheTypeRe.MatchString(node.Name.Name) {
					return true
				}
				for _, field := range st.Fields.List {
					t := typeOf(info, field.Type)
					if t == nil {
						continue
					}
					m, ok := types.Unalias(t).Underlying().(*types.Map)
					if !ok {
						continue
					}
					switch types.Unalias(m.Key()).Underlying().(type) {
					case *types.Pointer, *types.Interface:
						pass.Reportf(field.Pos(), "cache type %s keyed by %s: key caches by the ir fingerprint and a canonical options string, not pointer identity (hits must survive re-parsing and structural twins)", node.Name.Name, m.Key())
					}
				}
			case *ast.MapType:
				kt := typeOf(info, node.Key)
				if named, ok := derefNamed(kt); ok && strings.HasSuffix(named.Obj().Name(), "Options") {
					pass.Reportf(node.Key.Pos(), "map keyed by raw %s struct: canonicalize options to a key string (cf. batch.rsOptionsKey, solver.Options.Key) so equivalent configurations share entries", named.Obj().Name())
				}
			case *ast.CallExpr:
				if fmtName := fmtKeyCall(info, node); fmtName != "" && len(node.Args) > 0 {
					if lit, ok := node.Args[0].(*ast.BasicLit); ok && strings.Contains(lit.Value, "%p") {
						pass.Reportf(lit.Pos(), "%%p in %s: pointer identity must never reach a cache key — use the ir fingerprint", fmtName)
					}
				}
			}
			return true
		})
	}
	return nil
}

// fmtKeyCall returns the qualified name when call is a fmt formatting
// function whose output plausibly feeds a key, "" otherwise.
func fmtKeyCall(info *types.Info, call *ast.CallExpr) string {
	for _, name := range [...]string{"Sprintf", "Errorf", "Sprint", "Appendf"} {
		if pkgFuncCall(info, call, "fmt", name) {
			return "fmt." + name
		}
	}
	return ""
}
