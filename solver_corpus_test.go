package regsat

// Corpus-wide differential tests of the pluggable MILP solving layer: every
// registered backend must agree with the combinatorial exact search
// (rs.ExactBB) on the register saturation of every committed corpus graph.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"regsat/internal/ddg"
	"regsat/internal/rs"
	"regsat/internal/solver"
)

func loadCorpus(t *testing.T) []*ddg.Graph {
	t.Helper()
	files, err := filepath.Glob("testdata/*.ddg")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("corpus is empty: no .ddg files in testdata/")
	}
	var graphs []*ddg.Graph
	for _, file := range files {
		g, err := loadSingleGraph(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if g == nil {
			continue // cyclic loop kernel: covered by the cyclic differential
		}
		graphs = append(graphs, g)
	}
	if len(graphs) == 0 {
		t.Fatal("corpus holds no acyclic graphs")
	}
	return graphs
}

// loadSingleGraph loads one corpus file through the public source layer,
// returning (nil, nil) for cyclic loop kernels.
func loadSingleGraph(path string) (*ddg.Graph, error) {
	src := SourceFiles(path)
	it, ok := src.Next()
	if !ok {
		return nil, nil
	}
	if it.Err != nil {
		return nil, it.Err
	}
	if it.Loop != nil {
		return nil, nil
	}
	if !it.Graph.Finalized() {
		if err := it.Graph.Finalize(); err != nil {
			return nil, err
		}
	}
	return it.Graph, nil
}

// TestSolverBackendsAgreeOnCorpus: for every corpus graph and register type
// within the exactness budget, every backend's intLP saturation equals the
// exact-BB saturation when the solve completes, and never exceeds it when a
// search limit capped the solve (RS is then a valid lower bound, with the
// reported interval bracketing the exact value). The sparse engine runs
// twice — once with its presolve and clique-cut layers, once raw — so the
// speed layers are differentially proven semantics-free on the whole corpus.
func TestSolverBackendsAgreeOnCorpus(t *testing.T) {
	maxValues := 8
	limit := 15 * time.Second
	if testing.Short() {
		maxValues = 5
		limit = 5 * time.Second
	}
	type config struct {
		label string
		opt   solver.Options
	}
	var configs []config
	for _, b := range solver.Names() {
		configs = append(configs, config{b, solver.Options{Backend: b, TimeLimit: limit}})
	}
	configs = append(configs, config{"sparse/raw", solver.Options{
		Backend: "sparse", TimeLimit: limit, DisablePresolve: true, DisableCuts: true}})
	for _, g := range loadCorpus(t) {
		for _, typ := range g.Types() {
			an, err := rs.NewAnalysis(g, typ)
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name, typ, err)
			}
			if len(an.Values) == 0 || len(an.Values) > maxValues {
				continue
			}
			ref, _, err := rs.ExactBB(an, 0)
			if err != nil {
				t.Fatalf("%s/%s: exact-bb: %v", g.Name, typ, err)
			}
			for _, c := range configs {
				res, err := rs.ExactILP(context.Background(), an, true, c.opt)
				if err != nil {
					t.Fatalf("%s/%s [%s]: %v", g.Name, typ, c.label, err)
				}
				switch {
				case res.Exact && res.RS != ref.RS:
					t.Errorf("%s/%s [%s]: intLP RS=%d, exact-bb RS=%d", g.Name, typ, c.label, res.RS, ref.RS)
				case !res.Exact && res.RS > ref.RS:
					t.Errorf("%s/%s [%s]: capped intLP RS=%d exceeds exact %d", g.Name, typ, c.label, res.RS, ref.RS)
				case !res.Exact && res.UpperBound < ref.RS:
					t.Errorf("%s/%s [%s]: capped interval [%d,%d] excludes exact %d",
						g.Name, typ, c.label, res.RS, res.UpperBound, ref.RS)
				}
				if res.Witness != nil {
					if err := res.Witness.Validate(); err != nil {
						t.Errorf("%s/%s [%s]: witness invalid: %v", g.Name, typ, c.label, err)
					}
				}
			}
		}
	}
}

// TestBatchSolverBackendSelection: BatchOptions.Solver routes every intLP
// solve of a batch through the selected backend, and the results match the
// default backend's.
func TestBatchSolverBackendSelection(t *testing.T) {
	type outcome struct {
		rs    int
		exact bool
	}
	runWith := func(backend string) map[string]outcome {
		src, err := SourceDir("testdata")
		if err != nil {
			t.Fatal(err)
		}
		ch, err := AnalyzeAll(context.Background(), []GraphSource{src}, BatchOptions{
			RS:     RSOptions{Method: ExactILP, ApplyReductions: true, SkipWitness: true},
			Types:  []RegType{Float},
			Solver: SolverOptions{Backend: backend, TimeLimit: 5 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]outcome{}
		for res := range ch {
			if res.Err != nil {
				t.Fatalf("%s: %v", res.Name, res.Err)
			}
			r := res.RS[Float]
			if r == nil {
				continue
			}
			out[res.Name] = outcome{rs: r.RS, exact: r.Exact}
			if r.SolverStats == nil {
				t.Fatalf("%s: no solver stats from backend %q", res.Name, backend)
			}
		}
		return out
	}
	if testing.Short() {
		t.Skip("full-corpus batch ILP comparison is slow")
	}
	sparse := runWith("sparse")
	parallel := runWith("parallel")
	for name, v := range sparse {
		// Capped solves depend on timing; only proved results must agree.
		if pv, ok := parallel[name]; ok && v.exact && pv.exact && pv.rs != v.rs {
			t.Errorf("%s: sparse RS=%d, parallel RS=%d", name, v.rs, pv.rs)
		}
	}
}
